type estate = Observe | Apply | Confirm | Done of int

let validate_certificate (cert : Certificate.t) =
  if not (Objtype.is_readable cert.Certificate.objtype) then
    invalid_arg "Election: certificate type is not readable";
  if not (Certificate.check_recording cert) then
    invalid_arg "Election: certificate is not a recording certificate";
  if not (Certificate.is_clean cert) then
    invalid_arg "Election: certificate is not clean (u reappears in U_0 or U_1)"

(* Precomputed map from object values to the recording team, as an array
   ([-1] when the value records no team, e.g. the initial value [u]). *)
let team_table (cert : Certificate.t) =
  let ty = cert.Certificate.objtype in
  Array.init ty.Objtype.num_values (fun v ->
      match Certificate.first_team_of_value cert v with
      | Some team -> Bool.to_int team
      | None -> -1)

let team_election (cert : Certificate.t) : estate Program.t =
  validate_certificate cert;
  let ty = cert.Certificate.objtype in
  let read, decode =
    match Objtype.read_decoder ty with
    | Some pair -> pair
    | None -> assert false (* guarded by validate_certificate *)
  in
  let teams = team_table cert in
  let u = cert.Certificate.initial in
  let observe next_if_u state_of_team =
    Program.Poised
      {
        obj = 0;
        op = read;
        next =
          (fun r ->
            let v = decode r in
            if v = u then next_if_u
            else
              (* A clean recording certificate maps every value reachable by
                 at-most-once applications to a unique team. *)
              state_of_team teams.(v));
      }
  in
  {
    Program.name = Printf.sprintf "election(%s)" ty.Objtype.name;
    nprocs = cert.Certificate.nprocs;
    heap = [| (ty, u) |];
    init = (fun ~proc:_ ~input:_ -> Observe);
    view =
      (fun ~proc -> function
        | Done team -> Program.Decided team
        | Observe -> observe Apply (fun team -> Done team)
        | Apply ->
            Program.Poised
              { obj = 0; op = cert.Certificate.ops.(proc); next = (fun _ -> Confirm) }
        | Confirm ->
            (* Our own operation has been applied, so the value can no longer
               be [u]; reaching [Apply] again would mean applying twice. *)
            observe Apply (fun team -> Done team));
  }

let expected_winner (cert : Certificate.t) _sched trace =
  let read = Option.map fst (Objtype.read_decoder cert.Certificate.objtype) in
  List.find_map
    (function
      | Exec.Stepped { proc; obj = 0; op; no_op = false; _ } when Some op <> read ->
          Some (Bool.to_int cert.Certificate.team.(proc))
      | Exec.Stepped _ | Exec.Crashed _ | Exec.Crashed_all -> None)
    trace

type cstate = CAnnounce of int | CElect of estate * int | CFetch of int | CDone of int

let consensus_2 (cert : Certificate.t) : cstate Program.t =
  validate_certificate cert;
  if cert.Certificate.nprocs <> 2 then
    invalid_arg "Election.consensus_2: certificate must be for 2 processes";
  let ty = cert.Certificate.objtype in
  let read, decode =
    match Objtype.read_decoder ty with Some pair -> pair | None -> assert false
  in
  let teams = team_table cert in
  let u = cert.Certificate.initial in
  (* With two processes each team is a singleton: member.(team) is its
     process. *)
  let member =
    Array.init 2 (fun team ->
        match Certificate.team_members cert (team = 1) with
        | [ p ] -> p
        | _ -> invalid_arg "Election.consensus_2: teams must be singletons")
  in
  let reg = Gallery.register 3 in
  let observe ~next_if_u =
    Program.Poised
      {
        obj = 0;
        op = read;
        next =
          (fun r ->
            let v = decode r in
            if v = u then next_if_u else CFetch teams.(v));
      }
  in
  {
    Program.name = Printf.sprintf "consensus2(%s)" ty.Objtype.name;
    nprocs = 2;
    (* obj 0: the certified object; obj 1, 2: announcement registers. *)
    heap = [| (ty, u); (reg, 0); (reg, 0) |];
    init =
      (fun ~proc:_ ~input ->
        if input <> 0 && input <> 1 then invalid_arg "Election.consensus_2: binary inputs";
        CAnnounce input);
    view =
      (fun ~proc -> function
        | CDone v -> Program.Decided v
        | CAnnounce x ->
            Program.Poised
              { obj = 1 + proc; op = 1 + (1 + x); next = (fun _ -> CElect (Observe, x)) }
        | CElect (Observe, x) -> observe ~next_if_u:(CElect (Apply, x))
        | CElect (Apply, x) ->
            Program.Poised
              {
                obj = 0;
                op = cert.Certificate.ops.(proc);
                next = (fun _ -> CElect (Confirm, x));
              }
        | CElect (Confirm, x) -> observe ~next_if_u:(CElect (Apply, x))
        | CElect (Done _, _) -> assert false
        | CFetch team ->
            Program.Poised
              {
                obj = 1 + member.(team);
                op = 0;
                next =
                  (fun r ->
                    (* The winner announced before applying, so its register
                       is never bot here; decode 1+(1+x). *)
                    CDone (if r <= 1 then 0 else r - 2));
              });
  }

type dstate = DApply | DRead of Objtype.response | DDone of int

let validate_discerning (cert : Certificate.t) =
  if not (Objtype.is_readable cert.Certificate.objtype) then
    invalid_arg "Election: certificate type is not readable";
  if not (Certificate.check_discerning cert) then
    invalid_arg "Election: certificate is not a discerning certificate"

(* The replay table behind Ruppert's argument: for every schedule in S(P)
   and every participant j, map (j, response of o_j, final value) to the
   first process's team.  Disjointness of R_{0,j} and R_{1,j} makes the
   table functional. *)
let pair_table (cert : Certificate.t) =
  let table = Hashtbl.create 256 in
  List.iter
    (fun procs ->
      match procs with
      | [] -> ()
      | first :: _ ->
          let team = Bool.to_int cert.Certificate.team.(first) in
          let responses, value = Certificate.replay cert procs in
          let responses = Option.get responses in
          List.iter
            (fun j -> Hashtbl.replace table (j, responses.(j), value) team)
            procs)
    (Sched.at_most_once ~nprocs:cert.Certificate.nprocs);
  table

let discerning_election (cert : Certificate.t) : dstate Program.t =
  validate_discerning cert;
  let ty = cert.Certificate.objtype in
  let read, decode = Option.get (Objtype.read_decoder ty) in
  let table = pair_table cert in
  {
    Program.name = Printf.sprintf "discerning-election(%s)" ty.Objtype.name;
    nprocs = cert.Certificate.nprocs;
    heap = [| (ty, cert.Certificate.initial) |];
    init = (fun ~proc:_ ~input:_ -> DApply);
    view =
      (fun ~proc -> function
        | DDone team -> Program.Decided team
        | DApply ->
            Program.Poised
              { obj = 0; op = cert.Certificate.ops.(proc); next = (fun r -> DRead r) }
        | DRead r ->
            Program.Poised
              {
                obj = 0;
                op = read;
                next =
                  (fun read_resp ->
                    let v = decode read_resp in
                    match Hashtbl.find_opt table (proc, r, v) with
                    | Some team -> DDone team
                    | None ->
                        (* Outside the S(P) replay table: only reachable if
                           some process applied twice, which cannot happen
                           crash-free.  Decide a default so the state
                           machine stays total; the checkers flag it. *)
                        DDone 0);
              });
  }

type dcstate =
  | DCAnnounce of int
  | DCApply of int
  | DCRead of Objtype.response * int
  | DCFetch of int
  | DCDone of int

let discerning_consensus_2 (cert : Certificate.t) : dcstate Program.t =
  validate_discerning cert;
  if cert.Certificate.nprocs <> 2 then
    invalid_arg "Election.discerning_consensus_2: certificate must be for 2 processes";
  let ty = cert.Certificate.objtype in
  let read, decode = Option.get (Objtype.read_decoder ty) in
  let table = pair_table cert in
  let member =
    Array.init 2 (fun team ->
        match Certificate.team_members cert (team = 1) with
        | [ p ] -> p
        | _ -> invalid_arg "Election.discerning_consensus_2: teams must be singletons")
  in
  let reg = Gallery.register 3 in
  {
    Program.name = Printf.sprintf "discerning-consensus2(%s)" ty.Objtype.name;
    nprocs = 2;
    heap = [| (ty, cert.Certificate.initial); (reg, 0); (reg, 0) |];
    init =
      (fun ~proc:_ ~input ->
        if input <> 0 && input <> 1 then
          invalid_arg "Election.discerning_consensus_2: binary inputs";
        DCAnnounce input);
    view =
      (fun ~proc -> function
        | DCDone v -> Program.Decided v
        | DCAnnounce x ->
            Program.Poised
              { obj = 1 + proc; op = 1 + (1 + x); next = (fun _ -> DCApply x) }
        | DCApply x ->
            Program.Poised
              { obj = 0; op = cert.Certificate.ops.(proc); next = (fun r -> DCRead (r, x)) }
        | DCRead (r, x) ->
            Program.Poised
              {
                obj = 0;
                op = read;
                next =
                  (fun read_resp ->
                    let v = decode read_resp in
                    match Hashtbl.find_opt table (proc, r, v) with
                    | Some team -> if member.(team) = proc then DCDone x else DCFetch team
                    | None -> DCDone x);
              }
        | DCFetch team ->
            Program.Poised
              {
                obj = 1 + member.(team);
                op = 0;
                next = (fun r -> DCDone (if r <= 1 then 0 else r - 2));
              });
  }
