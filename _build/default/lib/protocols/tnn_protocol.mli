(** The paper's two algorithms on [T_{n,n'}] (Section 4).

    Both are binary consensus protocols: process inputs must be in
    [{0,1}]. *)

type wstate = WStart of int | WDone of int

val wait_free : n:int -> n':int -> wstate Program.t
(** The wait-free [n]-process algorithm (Lemma 15, lower bound): a process
    with input [x] applies [op_x] once and decides the response.  Correct
    for up to [n] processes in crash-free executions; *not* recoverable
    (a crash between applying and remembering the response forces a second
    application, which can disagree). *)

val wait_free_overloaded : procs:int -> n:int -> n':int -> wstate Program.t
(** The same algorithm run by [procs] processes (for exhibiting its failure
    when [procs > n]). *)

type rstate = RStart of int | RApply of int | RDone of int

val recoverable : n:int -> n':int -> rstate Program.t
(** The recoverable [n']-process algorithm (Lemma 16, lower bound): apply
    [op_R]; on [s] apply [op_x] and decide the response; on [s_{v,i}]
    decide [v]; on bottom decide [0] (unreachable with at most [n']
    processes). *)

val recoverable_overloaded : procs:int -> n:int -> n':int -> rstate Program.t
(** The same algorithm run by [procs] processes.  For [procs > n'] the
    paper's upper-bound argument applies and crash schedules can drive the
    object to bottom; [Counterexample.search] exhibits a violation
    (experiment E4). *)
