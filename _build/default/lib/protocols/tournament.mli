(** Full n-process recoverable consensus from clean recording certificates:
    a tournament tree.

    DFFR's Theorem 8 plus this paper's Theorem 13 say a readable
    deterministic type solves n-process recoverable consensus exactly when
    it is n-recording.  This module realizes the solvability direction as a
    concrete, model-checkable protocol built from *clean* certificates
    ({!Certificate.is_clean}), one per internal node of a binary tree over
    the processes:

    - a node over process set [L ∪ R] carries a clean recording certificate
      for [|L| + |R|] processes whose team partition is exactly ([L], [R]);
    - every process announces its input, then runs the clean-certificate
      election discipline (read; if the value is the certificate's initial
      value, apply own operation; read again) at each node on its leaf-to-
      root path, **deepest node first**;
    - to decide, it walks the tree from the root: each node's recorded
      first team selects a child; reaching a leaf selects a process, whose
      announcement is the decision.

    The leaf-first application order gives the key invariant: when a node's
    object has left its initial value, the child on the recorded side has
    left its initial value too (the node's first applier either applied the
    child first, or skipped it because it was already applied) — so the
    decide walk never reads an untouched object, and recoverable
    wait-freedom holds with a constant number of steps per node per
    attempt.  Cleanliness gives at-most-once application per object across
    crashes, so every object value stays inside its certificate's replay
    table.  The test suite certifies the 3-process instance exhaustively
    over bounded-crash executions and stress-tests 4 and 5 processes. *)

type plan
(** A tree of certified nodes for a given type and process count. *)

val plan : Objtype.t -> nprocs:int -> (plan, string) result
(** Build a balanced tournament over [0 .. nprocs-1], searching (via
    [Decide.search_partitioned ~clean:true]) for a clean recording
    certificate at every node.  [Error] names the first node whose
    certificate search failed — by Theorem 13 this happens precisely when
    the type's recoverable consensus level is too low (or its certificates
    at that size are all unclean). *)

val node_count : plan -> int
(** Internal nodes (each one shared object); [nprocs - 1] for a tree. *)

val pp_plan : Format.formatter -> plan -> unit

type state

val consensus : plan -> state Program.t
(** The protocol described above.  Heap: [nprocs] announcement registers
    followed by one certified object per internal node.  Inputs must be
    binary. *)
