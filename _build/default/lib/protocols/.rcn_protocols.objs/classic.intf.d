lib/protocols/classic.mli: Program
