lib/protocols/election.mli: Certificate Exec Objtype Program Sched
