lib/protocols/tournament.mli: Format Objtype Program
