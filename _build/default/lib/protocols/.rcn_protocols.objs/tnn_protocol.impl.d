lib/protocols/tnn_protocol.ml: Gallery Printf Program
