lib/protocols/tnn_protocol.mli: Program
