lib/protocols/classic.ml: Gallery Printf Program
