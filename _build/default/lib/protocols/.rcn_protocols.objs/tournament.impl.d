lib/protocols/tournament.ml: Array Bool Certificate Decide Format Fun Gallery List Objtype Option Printf Program String
