lib/protocols/election.ml: Array Bool Certificate Exec Gallery Hashtbl List Objtype Option Printf Program Sched
