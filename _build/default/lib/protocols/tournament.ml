type child = Leaf of int | Inner of int

type node = {
  members : int array;  (* global processes, left side first *)
  left_size : int;
  cert : Certificate.t;
  team_table : int array;  (* object value -> recorded team, -1 for u *)
  left : child;
  right : child;
}

type plan = {
  objtype : Objtype.t;
  nprocs : int;
  nodes : node array;
  root : child;
  paths : int list array;  (* per process: node ids, deepest first *)
}

let node_count plan = Array.length plan.nodes

(* Build a balanced tree over the process list, collecting nodes in an
   accumulator; returns the child handle for the subtree. *)
let plan ty ~nprocs =
  if nprocs < 2 then Error "tournament needs at least two processes"
  else begin
    let nodes = ref [] in
    let next_id = ref 0 in
    let exception Unsatisfiable of string in
    let rec build procs =
      match procs with
      | [] -> assert false
      | [ p ] -> Leaf p
      | _ ->
          let k = List.length procs in
          let left_procs = List.filteri (fun i _ -> i < k / 2) procs in
          let right_procs = List.filteri (fun i _ -> i >= k / 2) procs in
          let left = build left_procs in
          let right = build right_procs in
          let members = Array.of_list (left_procs @ right_procs) in
          let left_size = List.length left_procs in
          let team = Array.init k (fun i -> i >= left_size) in
          (match Decide.search_partitioned ~clean:true Decide.Recording ty ~team with
          | None ->
              raise
                (Unsatisfiable
                   (Printf.sprintf
                      "no clean recording certificate for %s over %d processes (split %d+%d)"
                      ty.Objtype.name k left_size (k - left_size)))
          | Some cert ->
              let team_table =
                Array.init ty.Objtype.num_values (fun v ->
                    match Certificate.first_team_of_value cert v with
                    | Some t -> Bool.to_int t
                    | None -> -1)
              in
              let id = !next_id in
              incr next_id;
              nodes := (id, { members; left_size; cert; team_table; left; right }) :: !nodes;
              Inner id)
    in
    match build (List.init nprocs Fun.id) with
    | exception Unsatisfiable msg -> Error msg
    | root ->
        let nodes =
          List.sort compare !nodes |> List.map snd |> Array.of_list
        in
        let paths = Array.make nprocs [] in
        (* A process's path is every node whose member set contains it,
           ordered deepest (smallest member set) first. *)
        Array.iteri
          (fun id node ->
            Array.iter
              (fun p -> paths.(p) <- (id, Array.length node.members) :: paths.(p))
              node.members)
          nodes;
        let paths =
          Array.map
            (fun entries ->
              List.sort (fun (_, a) (_, b) -> compare a b) entries |> List.map fst)
            paths
        in
        Ok { objtype = ty; nprocs; nodes; root; paths }
  end

let pp_plan ppf plan =
  Format.fprintf ppf "@[<v>tournament over %d processes on %s:@," plan.nprocs
    plan.objtype.Objtype.name;
  Array.iteri
    (fun id node ->
      let side child =
        match child with
        | Leaf p -> Printf.sprintf "p%d" p
        | Inner i -> Printf.sprintf "node%d" i
      in
      Format.fprintf ppf "node%d: {%s} vs {%s} -> %s | %s, u = %s@," id
        (String.concat ","
           (List.init node.left_size (fun i -> string_of_int node.members.(i))))
        (String.concat ","
           (List.init
              (Array.length node.members - node.left_size)
              (fun i -> string_of_int node.members.(node.left_size + i))))
        (side node.left) (side node.right)
        (plan.objtype.Objtype.value_name node.cert.Certificate.initial))
    plan.nodes;
  Format.fprintf ppf "@]"

type phase = PObserve | PApply | PConfirm

type state =
  | TAnnounce of int
  | TElect of { path_pos : int; phase : phase }
  | TDescend of int
  | TFetch of int
  | TDone of int

let consensus (plan : plan) : state Program.t =
  let ty = plan.objtype in
  let read, decode = Option.get (Objtype.read_decoder ty) in
  let reg = Gallery.register 3 in
  let obj_of_node id = plan.nprocs + id in
  let local node proc =
    let rec find i = if node.members.(i) = proc then i else find (i + 1) in
    find 0
  in
  let after_elect proc path_pos =
    if path_pos + 1 < List.length plan.paths.(proc) then
      TElect { path_pos = path_pos + 1; phase = PObserve }
    else
      match plan.root with Leaf p -> TFetch p | Inner id -> TDescend id
  in
  {
    Program.name = Printf.sprintf "tournament(%s, %d procs)" ty.Objtype.name plan.nprocs;
    nprocs = plan.nprocs;
    heap =
      Array.init
        (plan.nprocs + Array.length plan.nodes)
        (fun i ->
          if i < plan.nprocs then (reg, 0)
          else (ty, plan.nodes.(i - plan.nprocs).cert.Certificate.initial));
    init =
      (fun ~proc:_ ~input ->
        if input <> 0 && input <> 1 then invalid_arg "Tournament.consensus: binary inputs";
        TAnnounce input);
    view =
      (fun ~proc -> function
        | TDone v -> Program.Decided v
        | TAnnounce x ->
            Program.Poised
              {
                obj = proc;
                op = 1 + (1 + x);
                next = (fun _ -> TElect { path_pos = 0; phase = PObserve });
              }
        | TElect { path_pos; phase } -> (
            let node_id = List.nth plan.paths.(proc) path_pos in
            let node = plan.nodes.(node_id) in
            let obj = obj_of_node node_id in
            match phase with
            | PObserve ->
                Program.Poised
                  {
                    obj;
                    op = read;
                    next =
                      (fun r ->
                        if decode r = node.cert.Certificate.initial then
                          TElect { path_pos; phase = PApply }
                        else after_elect proc path_pos);
                  }
            | PApply ->
                Program.Poised
                  {
                    obj;
                    op = node.cert.Certificate.ops.(local node proc);
                    next = (fun _ -> TElect { path_pos; phase = PConfirm });
                  }
            | PConfirm ->
                (* Our operation applied, so the object has left its initial
                   value for good (cleanliness); move on. *)
                Program.Poised
                  { obj; op = read; next = (fun _ -> after_elect proc path_pos) })
        | TDescend node_id ->
            let node = plan.nodes.(node_id) in
            Program.Poised
              {
                obj = obj_of_node node_id;
                op = read;
                next =
                  (fun r ->
                    let v = decode r in
                    let team = node.team_table.(v) in
                    (* The leaf-first invariant guarantees v is not the
                       initial value here; stay total regardless. *)
                    let side = if team = 1 then node.right else node.left in
                    match side with Leaf p -> TFetch p | Inner id -> TDescend id);
              }
        | TFetch winner ->
            Program.Poised
              {
                obj = winner;
                op = 0;
                next = (fun r -> TDone (if r <= 1 then 0 else r - 2));
              });
  }
