let check_binary_input x =
  if x <> 0 && x <> 1 then invalid_arg "Classic: inputs must be 0 or 1"

type cas_state = CStart of int | CDone of int

let cas_consensus ~nprocs : cas_state Program.t =
  (* Values: 0 = bot, 1+v = decided v.  CAS(a,b) is op a*k + b with k = 3. *)
  let ty = Gallery.compare_and_swap 3 in
  {
    Program.name = Printf.sprintf "cas-consensus-%d" nprocs;
    nprocs;
    heap = [| (ty, 0) |];
    init =
      (fun ~proc:_ ~input ->
        check_binary_input input;
        CStart input);
    view =
      (fun ~proc:_ -> function
        | CDone v -> Program.Decided v
        | CStart x ->
            Program.Poised
              {
                obj = 0;
                op = (0 * 3) + (1 + x);
                next = (fun old -> if old = 0 then CDone x else CDone (old - 1));
              });
  }

type sticky_state = SStart of int | SDone of int

let sticky_consensus ~nprocs : sticky_state Program.t =
  {
    Program.name = Printf.sprintf "sticky-consensus-%d" nprocs;
    nprocs;
    heap = [| (Gallery.sticky_bit, 0) |];
    init =
      (fun ~proc:_ ~input ->
        check_binary_input input;
        SStart input);
    view =
      (fun ~proc:_ -> function
        | SDone v -> Program.Decided v
        | SStart x ->
            Program.Poised
              { obj = 0; op = x; next = (fun stuck -> SDone stuck) });
  }

type tas_state = TWrite of int | TTas of int | TRead of int | TDone of int

let tas_consensus_2 : tas_state Program.t =
  (* Heap: obj 0 = TAS bit; obj 1, 2 = announcement registers over
     {bot, 0, 1} (register values: 0 = bot, 1+v = announced v). *)
  let reg = Gallery.register 3 in
  {
    Program.name = "tas-consensus-2";
    nprocs = 2;
    heap = [| (Gallery.test_and_set, 0); (reg, 0); (reg, 0) |];
    init =
      (fun ~proc:_ ~input ->
        check_binary_input input;
        TWrite input);
    view =
      (fun ~proc -> function
        | TDone v -> Program.Decided v
        | TWrite x ->
            Program.Poised
              { obj = 1 + proc; op = 1 + (1 + x); next = (fun _ -> TTas x) }
        | TTas x ->
            Program.Poised
              {
                obj = 0;
                op = 0;
                next = (fun won -> if won = 0 then TDone x else TRead x);
              }
        | TRead x ->
            Program.Poised
              {
                obj = 2 - proc;
                op = 0;
                next =
                  (fun r ->
                    (* Register read responses are 1 + value; announced
                       values are 1 + input.  A bot announcement cannot be
                       read by the loser, but decide our own input to stay
                       total. *)
                    if r <= 1 then TDone x else TDone (r - 2));
              });
  }

type naive_state = NWrite of int | NRead | NDone of int

let register_race ~nprocs : naive_state Program.t =
  let reg = Gallery.register 3 in
  {
    Program.name = Printf.sprintf "register-race-%d" nprocs;
    nprocs;
    heap = [| (reg, 0) |];
    init =
      (fun ~proc:_ ~input ->
        check_binary_input input;
        NWrite input);
    view =
      (fun ~proc:_ -> function
        | NDone v -> Program.Decided v
        | NWrite x ->
            Program.Poised { obj = 0; op = 1 + (1 + x); next = (fun _ -> NRead) }
        | NRead ->
            Program.Poised
              { obj = 0; op = 0; next = (fun r -> NDone (if r <= 1 then 0 else r - 2)) });
  }
