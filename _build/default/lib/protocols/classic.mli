(** Classical consensus protocols, used as anchors and controls.

    All protocols here solve binary consensus (inputs in [{0,1}]) unless
    stated otherwise. *)

type cas_state = CStart of int | CDone of int

val cas_consensus : nprocs:int -> cas_state Program.t
(** [n]-process consensus from one CAS object over [{bot, 0, 1}]: apply
    [CAS(bot, 1+x)]; the winner sees [bot] and decides its own input,
    losers decide the value they see.  Also recoverable: re-applying the
    CAS after a crash is harmless because the object never leaves the
    decided value. *)

type sticky_state = SStart of int | SDone of int

val sticky_consensus : nprocs:int -> sticky_state Program.t
(** [n]-process consensus from a sticky bit: apply [Set_x], decide the
    stuck bit.  Recoverable for the same reason as CAS. *)

type tas_state = TWrite of int | TTas of int | TRead of int | TDone of int

val tas_consensus_2 : tas_state Program.t
(** The classical 2-process wait-free consensus from test-and-set plus two
    registers: announce the input, TAS; the winner decides its own input,
    the loser reads the winner's announcement.  Correct crash-free; *not*
    recoverable (Golab 2020) — a crash between the TAS and deciding loses
    the response, and [Counterexample.search] finds a violating crash
    schedule. *)

type naive_state = NWrite of int | NRead | NDone of int

val register_race : nprocs:int -> naive_state Program.t
(** Negative control: write the input to a shared register, read it back,
    decide what is read.  Violates agreement under interleaving; the test
    suite checks that {!Counterexample.search} finds the violation (as FLP
    predicts, no register-only protocol could be correct). *)
