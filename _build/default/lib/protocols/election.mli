(** Certificate-driven protocols for readable types.

    DFFR (2022, Theorem 8) prove that objects of any [n]-recording readable
    deterministic type solve [n]-process recoverable consensus with
    registers; together with this paper's Theorem 13 that makes max-recording
    the exact recoverable consensus number of readable deterministic types.
    We implement the executable core of that direction for *clean*
    certificates ({!Certificate.is_clean}: the initial value [u] cannot
    reappear once any certificate operation has been applied; equivalently
    [u ∉ U_0 ∪ U_1]).  Cleanliness makes "read [u]" synonymous with "nobody
    has applied yet", which yields a simple recoverable protocol whose
    correctness the test suite certifies by exhaustive bounded-crash model
    checking.  Certificates whose teams abuse the hiding allowance
    ([u ∈ U_x] with a singleton opposite team) are exactly the non-clean
    ones; the paper's machinery shows why they are delicate.

    The protocols below are *team elections*: every process outputs the
    team (0 or 1) of the first process to apply its certificate operation.
    For two processes (singleton teams) this upgrades to full binary
    consensus via announcement registers. *)

type estate = Observe | Apply | Confirm | Done of int

val team_election : Certificate.t -> estate Program.t
(** Recoverable team election from a clean recording certificate on a
    readable type.  Process [i]: read the object; if it holds [u], apply
    [o_i] and read again; output the team that the final value records.
    @raise Invalid_argument if the certificate's type is not readable, the
    certificate fails {!Certificate.check_recording}, or it is not clean. *)

val expected_winner : Certificate.t -> Sched.t -> Exec.trace_event list -> int option
(** The team of the first process to apply its certificate operation in a
    trace (ignoring reads), i.e. the team every process must output. *)

type cstate = CAnnounce of int | CElect of estate * int | CFetch of int | CDone of int

val consensus_2 : Certificate.t -> cstate Program.t
(** Recoverable binary consensus for 2 processes from a clean 2-recording
    certificate: announce the input in a per-process register, run the team
    election, and decide the announced input of the winning (singleton)
    team's process.
    @raise Invalid_argument under the same conditions as
    {!team_election}, or if the certificate is not for exactly 2
    processes. *)

(** {2 Wait-free (crash-free) elections from discerning certificates}

    Ruppert's characterization: for readable deterministic types,
    [n]-discerning is exactly consensus number [>= n].  The sufficiency
    direction has a compact executable core: in a crash-free execution
    every process applies its certificate operation at most once, so when a
    process applies [o_j] (receiving [r]) and then Reads the object
    (seeing [v]), the schedule of operations applied so far is a member of
    [S(P)] containing [p_j] — and by the disjointness of [R_{0,j}] and
    [R_{1,j}], the pair [(r, v)] determines the team of the first process
    to have applied.  All processes therefore compute the same team:
    wait-free team election, upgraded to 2-process binary consensus with
    announcement registers exactly as in the recoverable case.

    These protocols are *not* recoverable: a crash can make a process apply
    its operation twice, leaving the object in a state outside the [S(P)]
    replay table (the test suite shows the model checker finding such
    executions) — the precise sense in which discerning is weaker than
    recording. *)

type dstate = DApply | DRead of Objtype.response | DDone of int

val discerning_election : Certificate.t -> dstate Program.t
(** Wait-free team election from a discerning certificate: apply [o_i],
    Read, decide the team determined by the (response, value) pair.
    @raise Invalid_argument if the certificate's type is not readable or
    fails {!Certificate.check_discerning}. *)

type dcstate =
  | DCAnnounce of int
  | DCApply of int
  | DCRead of Objtype.response * int
  | DCFetch of int
  | DCDone of int

val discerning_consensus_2 : Certificate.t -> dcstate Program.t
(** Crash-free 2-process binary consensus from a 2-discerning certificate
    (announce, elect, fetch the winner's announcement).  With the classical
    TAS certificate this instantiates to the textbook TAS consensus
    algorithm.
    @raise Invalid_argument as {!discerning_election}, or if the
    certificate is not for exactly 2 processes. *)
