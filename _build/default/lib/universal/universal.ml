type workload = Objtype.op list array

type ustate =
  | Running of { round : int; op_idx : int; replica : Objtype.value; acc_rev : int list }
  | Finished of int list

let descriptor ~width ~proc ~op_idx = (proc * width) + op_idx
let descriptor_proc ~width desc = desc / width
let descriptor_op_idx ~width desc = desc mod width

let build ~base ~base_initial (workload : workload) : ustate Program.t =
  let nprocs = Array.length workload in
  if nprocs = 0 then invalid_arg "Universal.build: empty workload";
  if base_initial < 0 || base_initial >= base.Objtype.num_values then
    invalid_arg "Universal.build: base initial value out of range";
  Array.iter
    (List.iter (fun op ->
         if op < 0 || op >= base.Objtype.num_ops then
           invalid_arg "Universal.build: workload operation out of range"))
    workload;
  let ops = Array.map Array.of_list workload in
  let width = Array.fold_left (fun acc l -> max acc (Array.length l)) 1 ops in
  let total = Array.fold_left (fun acc l -> acc + Array.length l) 0 ops in
  let rounds = max total 1 in
  let proposals = nprocs * width in
  let cell = Gallery.consensus_object proposals in
  let finish acc_rev = Finished (List.rev acc_rev) in
  let start op_idx = Running { round = 0; op_idx; replica = base_initial; acc_rev = [] } in
  {
    Program.name = Printf.sprintf "universal(%s, %d procs)" base.Objtype.name nprocs;
    nprocs;
    heap = Array.init rounds (fun _ -> (cell, 0));
    init = (fun ~proc ~input:_ -> if Array.length ops.(proc) = 0 then finish [] else start 0);
    view =
      (fun ~proc -> function
        | Finished acc ->
            (* The decision value only needs to be a deterministic function
               of the responses; tests inspect the responses directly. *)
            Program.Decided (Hashtbl.hash acc)
        | Running { round; op_idx; replica; acc_rev } ->
            if round >= rounds then
              (* Cannot happen: every decided round consumes a distinct
                 pending descriptor.  Finish defensively. *)
              Program.Decided (Hashtbl.hash (List.rev acc_rev))
            else
              Program.Poised
                {
                  obj = round;
                  op = descriptor ~width ~proc ~op_idx;
                  next =
                    (fun winner ->
                      (* consensus_object's Propose responds with the decided
                         proposal, whether or not we won. *)
                      let wproc = descriptor_proc ~width winner in
                      let widx = descriptor_op_idx ~width winner in
                      let resp, replica' =
                        Objtype.apply base replica ops.(wproc).(widx)
                      in
                      if wproc = proc && widx = op_idx then
                        let acc_rev = resp :: acc_rev in
                        if op_idx + 1 >= Array.length ops.(proc) then finish acc_rev
                        else
                          Running
                            { round = round + 1; op_idx = op_idx + 1; replica = replica'; acc_rev }
                      else
                        Running { round = round + 1; op_idx; replica = replica'; acc_rev });
                });
  }

let responses _ = function Finished acc -> Some acc | Running _ -> None

type lin_report = {
  linearization : (int * int) list;
  ok : bool;
  detail : string;
}

let check_linearizable (program : ustate Program.t) ~base ~base_initial (workload : workload)
    (config : ustate Config.t) =
  let nprocs = Array.length workload in
  let ops = Array.map Array.of_list workload in
  let width = Array.fold_left (fun acc l -> max acc (Array.length l)) 1 ops in
  let fail detail = { linearization = []; ok = false; detail } in
  (* Decode the decided prefix of rounds from the consensus objects. *)
  let rec decided r acc =
    if r >= Array.length program.Program.heap then List.rev acc
    else
      let v = config.Config.values.(r) in
      if v = 0 then List.rev acc
      else
        let desc = v - 1 in
        decided (r + 1) ((descriptor_proc ~width desc, descriptor_op_idx ~width desc) :: acc)
  in
  let linearization = decided 0 [] in
  (* Each process's ops must appear in program order, at most once. *)
  let next_expected = Array.make nprocs 0 in
  let order_ok =
    List.for_all
      (fun (p, idx) ->
        if p < 0 || p >= nprocs || idx <> next_expected.(p) then false
        else begin
          next_expected.(p) <- idx + 1;
          true
        end)
      linearization
  in
  if not order_ok then fail "descriptors out of program order or duplicated"
  else begin
    (* Replay sequentially and collect expected responses per process. *)
    let expected = Array.make nprocs [] in
    let _final =
      List.fold_left
        (fun replica (p, idx) ->
          let resp, replica' = Objtype.apply base replica ops.(p).(idx) in
          expected.(p) <- resp :: expected.(p);
          replica')
        base_initial linearization
    in
    let expected = Array.map List.rev expected in
    let mismatch = ref None in
    for p = 0 to nprocs - 1 do
      match config.Config.locals.(p) with
      | Finished acc ->
          if acc <> expected.(p) && !mismatch = None then
            mismatch := Some (Printf.sprintf "p%d responses disagree with linearization" p)
      | Running _ ->
          if next_expected.(p) = Array.length ops.(p) && !mismatch = None then
            (* All its operations are decided, yet the process hasn't
               finished: legal mid-execution, only report when asked for a
               complete check. *)
            ()
    done;
    match !mismatch with
    | Some detail -> { linearization; ok = false; detail }
    | None -> { linearization; ok = true; detail = "linearizable" }
  end

type hcore = {
  hround : int;
  hop_idx : int;
  hreplica : Objtype.value;
  hacc_rev : int list;
  fronts : int list;
}

type hstate =
  | HAnnounce of hcore
  | HRead of hcore
  | HPropose of hcore * int
  | HFinished of int list

let build_helping ~base ~base_initial (workload : workload) : hstate Program.t =
  let nprocs = Array.length workload in
  if nprocs = 0 then invalid_arg "Universal.build_helping: empty workload";
  Array.iter
    (List.iter (fun op ->
         if op < 0 || op >= base.Objtype.num_ops then
           invalid_arg "Universal.build_helping: workload operation out of range"))
    workload;
  let ops = Array.map Array.of_list workload in
  let width = Array.fold_left (fun acc l -> max acc (Array.length l)) 1 ops in
  let total = Array.fold_left (fun acc l -> acc + Array.length l) 0 ops in
  (* Helping can waste at most the announce-latency per operation; the
     no-duplicate argument (every proposer has replayed all earlier rounds)
     keeps one round per operation enough. *)
  let rounds = max total 1 in
  let proposals = nprocs * width in
  let cell = Gallery.consensus_object proposals in
  (* Announce registers hold 1 + descriptor (0 = nothing announced). *)
  let announce_reg = Gallery.register (1 + proposals) in
  let consensus_obj r = nprocs + r in
  let fresh_fronts = List.init nprocs (fun _ -> 0) in
  let finish core = HFinished (List.rev core.hacc_rev) in
  let decided core desc =
    let p = descriptor_proc ~width desc and i = descriptor_op_idx ~width desc in
    i < List.nth core.fronts p
  in
  let bump fronts p = List.mapi (fun q c -> if q = p then c + 1 else c) fronts in
  {
    Program.name = Printf.sprintf "universal-helping(%s, %d procs)" base.Objtype.name nprocs;
    nprocs;
    heap =
      Array.init (nprocs + rounds) (fun i ->
          if i < nprocs then (announce_reg, 0) else (cell, 0));
    init =
      (fun ~proc ~input:_ ->
        if Array.length ops.(proc) = 0 then HFinished []
        else
          HAnnounce
            { hround = 0; hop_idx = 0; hreplica = base_initial; hacc_rev = []; fronts = fresh_fronts });
    view =
      (fun ~proc -> function
        | HFinished acc -> Program.Decided (Hashtbl.hash acc)
        | HAnnounce core ->
            (* Publish my pending descriptor (write op = 1 + value). *)
            let mine = descriptor ~width ~proc ~op_idx:core.hop_idx in
            Program.Poised
              { obj = proc; op = 1 + (1 + mine); next = (fun _ -> HRead core) }
        | HRead core ->
            if core.hround >= rounds then Program.Decided (Hashtbl.hash (List.rev core.hacc_rev))
            else
              let slot = core.hround mod nprocs in
              Program.Poised
                {
                  obj = slot;
                  op = 0;
                  next =
                    (fun r ->
                      (* Register read responses are 1 + value; announce
                         values are 1 + desc. *)
                      let announced = if r >= 2 then Some (r - 2) else None in
                      let mine = descriptor ~width ~proc ~op_idx:core.hop_idx in
                      let choice =
                        match announced with
                        | Some d when not (decided core d) -> d
                        | Some _ | None -> mine
                      in
                      HPropose (core, choice));
                }
        | HPropose (core, desc) ->
            Program.Poised
              {
                obj = consensus_obj core.hround;
                op = desc;
                next =
                  (fun winner ->
                    let wproc = descriptor_proc ~width winner in
                    let widx = descriptor_op_idx ~width winner in
                    let resp, replica' = Objtype.apply base core.hreplica ops.(wproc).(widx) in
                    let fronts = bump core.fronts wproc in
                    if wproc = proc && widx = core.hop_idx then
                      let hacc_rev = resp :: core.hacc_rev in
                      if core.hop_idx + 1 >= Array.length ops.(proc) then
                        finish { core with hacc_rev }
                      else
                        HAnnounce
                          {
                            hround = core.hround + 1;
                            hop_idx = core.hop_idx + 1;
                            hreplica = replica';
                            hacc_rev;
                            fronts;
                          }
                    else
                      HRead { core with hround = core.hround + 1; hreplica = replica'; fronts });
              });
  }

let check_linearizable_helping (program : hstate Program.t) ~base ~base_initial
    (workload : workload) (config : hstate Config.t) =
  let nprocs = Array.length workload in
  let ops = Array.map Array.of_list workload in
  let width = Array.fold_left (fun acc l -> max acc (Array.length l)) 1 ops in
  let fail detail = { linearization = []; ok = false; detail } in
  let rounds = Array.length program.Program.heap - nprocs in
  let rec decided r acc =
    if r >= rounds then List.rev acc
    else
      let v = config.Config.values.(nprocs + r) in
      if v = 0 then List.rev acc
      else
        let desc = v - 1 in
        decided (r + 1) ((descriptor_proc ~width desc, descriptor_op_idx ~width desc) :: acc)
  in
  let linearization = decided 0 [] in
  let next_expected = Array.make nprocs 0 in
  let order_ok =
    List.for_all
      (fun (p, idx) ->
        if p < 0 || p >= nprocs || idx <> next_expected.(p) then false
        else begin
          next_expected.(p) <- idx + 1;
          true
        end)
      linearization
  in
  if not order_ok then fail "descriptors out of program order or duplicated"
  else begin
    let expected = Array.make nprocs [] in
    let _ =
      List.fold_left
        (fun replica (p, idx) ->
          let resp, replica' = Objtype.apply base replica ops.(p).(idx) in
          expected.(p) <- resp :: expected.(p);
          replica')
        base_initial linearization
    in
    let expected = Array.map List.rev expected in
    let mismatch = ref None in
    for p = 0 to nprocs - 1 do
      match config.Config.locals.(p) with
      | HFinished acc ->
          if acc <> expected.(p) && !mismatch = None then
            mismatch := Some (Printf.sprintf "p%d responses disagree with linearization" p)
      | HAnnounce _ | HRead _ | HPropose _ -> ()
    done;
    match !mismatch with
    | Some detail -> { linearization; ok = false; detail }
    | None -> { linearization; ok = true; detail = "linearizable" }
  end
