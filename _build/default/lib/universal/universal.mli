(** A universal construction: implementing an arbitrary deterministic object
    from consensus objects plus replicas, in the simulator.

    Herlihy (1991) proved consensus is universal; Berryhill–Golab–Tripunitara
    and DFFR carried universality to the recoverable setting.  This module
    implements the round-based core of that construction as a {!Program.t}:
    a shared array of one-shot consensus objects [C_0, C_1, ...] decides, in
    round order, which pending operation descriptor is applied next to the
    (deterministically replayable) replica.  To apply an operation a process
    proposes its descriptor to the next round; whatever wins is applied to
    the process's local replica, and the process moves on (re-proposing its
    descriptor until it wins).

    The construction is *recoverable by replay*: a crash resets a process to
    round 0 with a fresh replica, and re-proposing to already-decided rounds
    acts as a read — the process re-discovers every past winner, including
    its own operations (detectability: it can tell whether an operation
    interrupted by a crash took effect).  No helping is implemented, so
    progress is lock-free rather than wait-free; in the bounded executions
    explored by the tests every process finishes because each round's winner
    is a distinct pending descriptor, so the number of rounds is bounded by
    the total number of operations. *)

type workload = Objtype.op list array
(** [workload.(i)] is the sequence of operations process [i] must apply. *)

type ustate =
  | Running of { round : int; op_idx : int; replica : Objtype.value; acc_rev : int list }
  | Finished of int list
      (** responses to the process's own operations, in program order *)

val build :
  base:Objtype.t -> base_initial:Objtype.value -> workload -> ustate Program.t
(** A program whose heap holds one consensus object per potential round
    (total operation count), each over descriptor proposals.  A process
    decides (outputs a hash of its response list) once all its operations
    have been applied.
    @raise Invalid_argument if some workload operation is out of range. *)

val responses : 'a -> ustate -> int list option
(** The finished response list of a state, if finished ([Some] exactly when
    the process has decided).  The first argument is ignored (kept for call
    symmetry with {!Config.decided}). *)

type lin_report = {
  linearization : (int * int) list;
      (** decided rounds in order: (process, operation index) *)
  ok : bool;
  detail : string;
}

val check_linearizable : ustate Program.t -> base:Objtype.t -> base_initial:Objtype.value ->
  workload -> ustate Config.t -> lin_report
(** Read the decided rounds out of a final configuration, replay them
    sequentially against the base type's specification, and compare the
    replayed responses with what each finished process actually collected.
    Also checks that each process's operations appear in program order and
    at most once. *)

(** {2 Helping}

    In {!build}, a process only ever proposes its own next descriptor, so a
    fast rival can win many consecutive rounds and a slow process may take
    a number of steps proportional to the *rival's* workload before its own
    operation is decided (lock-free, not wait-free, step complexity).
    {!build_helping} adds Herlihy-style helping: processes publish their
    pending descriptor in announce registers, and the proposer for round
    [r] first tries to push through the announced operation of process
    [r mod n] (unless its replay shows it already applied).  Every
    announced operation is then decided within [O(n)] rounds of its
    announcement, whatever the schedule. *)

type hcore = {
  hround : int;
  hop_idx : int;
  hreplica : Objtype.value;
  hacc_rev : int list;
  fronts : int list;  (** per-process count of already-decided operations *)
}

type hstate =
  | HAnnounce of hcore
  | HRead of hcore
  | HPropose of hcore * int  (** chosen descriptor *)
  | HFinished of int list

val build_helping :
  base:Objtype.t -> base_initial:Objtype.value -> workload -> hstate Program.t
(** Heap layout: [n] announce registers (indices [0 .. n-1]) followed by
    one consensus object per round.  A process announces its pending
    descriptor, reads the announce register of the current round's help
    slot, proposes the helped descriptor when it is announced and not yet
    decided (otherwise its own), applies the round's winner to its replica,
    and repeats.  Crash recovery replays rounds from 0 as in {!build}. *)


val check_linearizable_helping :
  hstate Program.t ->
  base:Objtype.t ->
  base_initial:Objtype.value ->
  workload ->
  hstate Config.t ->
  lin_report
(** Same checking as {!check_linearizable}, reading the helping states. *)
