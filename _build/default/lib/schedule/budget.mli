(** The paper's crash-budget execution sets [E_z] and [E_z^*] (Section 3).

    For a configuration [C] and integer [z > 0], [E_z(C)] is the set of
    executions from [C] with no crashes by [p_0] and in which, for every
    [i >= 1], the number of crashes by [p_i] is at most [z * n] times the
    number of steps collectively taken by [p_0, ..., p_{i-1}].  [E_z^*(C)]
    additionally requires the bound to hold in *every prefix* — it is the
    prefix-closed variant.

    Budgets are a property of schedules only (which events occur), so this
    module works on {!Sched.t} values; the machine layer pairs them with
    configurations.  Simultaneous crashes ([Sched.Crash_all]) belong to the
    other crash model and never appear in [E_z] or [E_z^*]: the membership
    predicates reject them and {!record} raises on them. *)

val within_e_z : z:int -> nprocs:int -> Sched.t -> bool
(** Membership in [E_z]: the bound checked on the whole schedule only. *)

val within_e_z_star : z:int -> nprocs:int -> Sched.t -> bool
(** Membership in [E_z^*]: the bound checked on every prefix. *)

type counter
(** Incremental membership tracking for [E_z^*], for use by explorers and
    adversaries that extend executions one event at a time. *)

val counter : z:int -> nprocs:int -> counter

val may_crash : counter -> Sched.proc -> bool
(** Whether appending [Crash p] keeps the execution inside [E_z^*]. *)

val record : counter -> Sched.event -> counter
(** Functional update after the event occurs.
    @raise Invalid_argument if the event is a crash not allowed by
    {!may_crash}. *)

val crash_headroom : counter -> Sched.proc -> int
(** How many further crashes of [p] are currently allowed ([max_int] is never
    returned; [p_0]'s headroom is always [0]). *)

val steps_below : counter -> Sched.proc -> int
(** Steps taken so far by processes with identifiers smaller than [p]. *)

val state : counter -> int array * int array
(** Copies of the per-process (steps, crashes) counters, for hashing by
    explorers. *)
