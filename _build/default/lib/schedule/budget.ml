type counter = {
  z : int;
  nprocs : int;
  steps : int array;  (* steps.(i) = steps taken by p_i so far *)
  crashes : int array;  (* crashes.(i) = crashes by p_i so far *)
}

let counter ~z ~nprocs =
  if z <= 0 then invalid_arg "Budget.counter: z must be positive";
  if nprocs <= 0 then invalid_arg "Budget.counter: nprocs must be positive";
  { z; nprocs; steps = Array.make nprocs 0; crashes = Array.make nprocs 0 }

let steps_below c p =
  let total = ref 0 in
  for i = 0 to p - 1 do
    total := !total + c.steps.(i)
  done;
  !total

let crash_headroom c p =
  if p = 0 then 0 else max 0 ((c.z * c.nprocs * steps_below c p) - c.crashes.(p))

let may_crash c p = p > 0 && crash_headroom c p > 0

let record c event =
  match event with
  | Sched.Crash_all ->
      invalid_arg "Budget.record: simultaneous crashes lie outside E_z"
  | Sched.Step p ->
      let steps = Array.copy c.steps in
      steps.(p) <- steps.(p) + 1;
      { c with steps }
  | Sched.Crash p ->
      if not (may_crash c p) then
        invalid_arg (Printf.sprintf "Budget.record: crash of p%d exceeds budget" p);
      let crashes = Array.copy c.crashes in
      crashes.(p) <- crashes.(p) + 1;
      { c with crashes }

let within_e_z_star ~z ~nprocs sched =
  let rec loop c = function
    | [] -> true
    | Sched.Crash_all :: _ -> false
    | (Sched.Crash p as e) :: rest -> may_crash c p && loop (record c e) rest
    | (Sched.Step _ as e) :: rest -> loop (record c e) rest
  in
  loop (counter ~z ~nprocs) sched

let within_e_z ~z ~nprocs sched =
  (* Whole-schedule bound only: p_0 crash-free and final counts within
     budget, regardless of the order in which crashes accumulate. *)
  Sched.crashes_of sched 0 = 0
  && Sched.crash_alls sched = 0
  &&
  let ok = ref true in
  for p = 1 to nprocs - 1 do
    let below = ref 0 in
    for q = 0 to p - 1 do
      below := !below + Sched.steps_of sched q
    done;
    if Sched.crashes_of sched p > z * nprocs * !below then ok := false
  done;
  !ok

let state c = (Array.copy c.steps, Array.copy c.crashes)
