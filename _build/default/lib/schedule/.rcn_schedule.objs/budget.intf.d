lib/schedule/budget.mli: Sched
