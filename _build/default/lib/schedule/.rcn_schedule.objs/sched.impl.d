lib/schedule/sched.ml: Array Format Fun List Printf Result String
