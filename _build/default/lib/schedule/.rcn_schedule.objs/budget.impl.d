lib/schedule/budget.ml: Array Printf Sched
