lib/schedule/sched.mli: Format
