(** The paper's *other* crash model: simultaneous crashes, where every
    process crashes at the same time (modelling full-system power failures).
    Golab (2020) and DFFR show the recoverable consensus hierarchy under
    simultaneous crashes coincides with Herlihy's hierarchy, in contrast to
    the individual-crash model this repository centres on.

    This module is a bounded-exhaustive model checker for executions built
    from steps plus at most [max_crashes] [Sched.Crash_all] events — the
    simultaneous analogue of [Counterexample].  It lets the test suite show
    concretely that the two models differ on *algorithms*: the classical
    TAS protocol fails in both models, CAS/sticky protocols survive both,
    and the individual-crash counterexample schedules are not even
    admissible here. *)

type result = {
  violation : Counterexample.violation;
  inputs : int array;
  schedule : Sched.t;
}

val search :
  ?max_events:int ->
  ?max_nodes:int ->
  max_crashes:int ->
  inputs_list:int array list ->
  'st Program.t ->
  result option
(** Breadth-first search over executions interleaving steps of undecided
    processes with up to [max_crashes] simultaneous crashes, stopping at
    the first agreement/validity violation (decisions are sticky across
    crashes, as in the individual model). *)

val certify :
  ?max_events:int ->
  ?max_nodes:int ->
  max_crashes:int ->
  inputs_list:int array list ->
  'st Program.t ->
  (unit, result) Stdlib.result * bool
(** [Ok ()] plus a truncation flag when no violation exists in the bounded
    space. *)
