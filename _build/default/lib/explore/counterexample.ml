type violation = Disagreement of int * int | Invalid of int

type result = {
  violation : violation;
  inputs : int array;
  schedule : Sched.t;
}

let check_outputs ~inputs (node : 'st Explore.node) program =
  let decided =
    Array.to_list node.Explore.outputs |> List.filter_map Fun.id |> List.sort_uniq compare
  in
  (* Re-decisions after a crash appear as the *current* decision differing
     from the recorded first output. *)
  let redecision =
    let found = ref None in
    Array.iteri
      (fun i first ->
        match (first, Config.decided program node.Explore.config ~proc:i) with
        | Some v, Some w when v <> w && !found = None -> found := Some (v, w)
        | _ -> ())
      node.Explore.outputs;
    !found
  in
  match redecision with
  | Some (v, w) -> Some (Disagreement (v, w))
  | None -> (
      match decided with
      | v :: w :: _ -> Some (Disagreement (v, w))
      | [ v ] when not (Array.exists (fun i -> i = v) inputs) -> Some (Invalid v)
      | _ -> None)

let search_one ~max_events ~max_nodes ~z ~inputs program =
  let ctx = Explore.create ~max_events ~z program in
  let start = Explore.root ctx ~inputs in
  let seen = Hashtbl.create 4096 in
  let queue = Queue.create () in
  Queue.add start queue;
  let truncated = ref false in
  let found = ref None in
  while !found = None && not (Queue.is_empty queue) do
    let node = Queue.take queue in
    match check_outputs ~inputs node program with
    | Some violation ->
        found := Some { violation; inputs; schedule = Explore.schedule_to node }
    | None ->
        if Hashtbl.length seen >= max_nodes then truncated := true
        else
          List.iter
            (fun (_, kid) ->
              let key = kid.Explore.config, kid.Explore.outputs, Budget.state kid.Explore.counter in
              if not (Hashtbl.mem seen key) then begin
                Hashtbl.add seen key ();
                if List.length kid.Explore.path_rev <= max_events then Queue.add kid queue
                else truncated := true
              end)
            (Explore.children ctx node)
  done;
  (!found, !truncated)

let search ?(max_events = 60) ?(max_nodes = 200_000) ~z ~inputs_list program =
  List.find_map
    (fun inputs -> fst (search_one ~max_events ~max_nodes ~z ~inputs program))
    inputs_list

let certify ?(max_events = 60) ?(max_nodes = 200_000) ~z ~inputs_list program =
  let truncated = ref false in
  let rec loop = function
    | [] -> Ok ()
    | inputs :: rest -> (
        match search_one ~max_events ~max_nodes ~z ~inputs program with
        | Some r, _ -> Error r
        | None, tr ->
            truncated := !truncated || tr;
            loop rest)
  in
  let outcome = loop inputs_list in
  (outcome, !truncated)
