type result = {
  violation : Counterexample.violation;
  inputs : int array;
  schedule : Sched.t;
}

type 'st node = {
  config : 'st Config.t;
  outputs : int option array;
  crashes : int;
  path_rev : Sched.event list;
}

let record_outputs program config outputs =
  let outputs = Array.copy outputs in
  Array.iteri
    (fun i o ->
      if o = None then
        match Config.decided program config ~proc:i with
        | Some v -> outputs.(i) <- Some v
        | None -> ())
    outputs;
  outputs

let check ~inputs program node =
  let decided =
    Array.to_list node.outputs |> List.filter_map Fun.id |> List.sort_uniq compare
  in
  let redecision =
    let found = ref None in
    Array.iteri
      (fun i first ->
        match (first, Config.decided program node.config ~proc:i) with
        | Some v, Some w when v <> w && !found = None ->
            found := Some (Counterexample.Disagreement (v, w))
        | _ -> ())
      node.outputs;
    !found
  in
  match redecision with
  | Some v -> Some v
  | None -> (
      match decided with
      | v :: w :: _ -> Some (Counterexample.Disagreement (v, w))
      | [ v ] when not (Array.exists (( = ) v) inputs) -> Some (Counterexample.Invalid v)
      | _ -> None)

let children program node ~max_crashes =
  let nprocs = program.Program.nprocs in
  let steps =
    List.init nprocs (fun p ->
        match Config.decided program node.config ~proc:p with
        | Some _ -> None
        | None ->
            let config = Exec.apply_step program node.config ~proc:p in
            Some
              {
                config;
                outputs = record_outputs program config node.outputs;
                crashes = node.crashes;
                path_rev = Sched.step p :: node.path_rev;
              })
    |> List.filter_map Fun.id
  in
  if node.crashes >= max_crashes then steps
  else
    let config = Exec.apply_crash_all node.config program in
    steps
    @ [
        {
          config;
          outputs = node.outputs;
          crashes = node.crashes + 1;
          path_rev = Sched.crash_all :: node.path_rev;
        };
      ]

let search_one ~max_events ~max_nodes ~max_crashes ~inputs program =
  let start =
    {
      config = Config.initial program ~inputs;
      outputs = Array.make program.Program.nprocs None;
      crashes = 0;
      path_rev = [];
    }
  in
  let seen = Hashtbl.create 4096 in
  let queue = Queue.create () in
  Queue.add start queue;
  let truncated = ref false in
  let found = ref None in
  while !found = None && not (Queue.is_empty queue) do
    let node = Queue.take queue in
    match check ~inputs program node with
    | Some violation ->
        found := Some { violation; inputs; schedule = List.rev node.path_rev }
    | None ->
        if Hashtbl.length seen >= max_nodes then truncated := true
        else if List.length node.path_rev >= max_events then truncated := true
        else
          List.iter
            (fun kid ->
              let key = (kid.config, kid.outputs, kid.crashes) in
              if not (Hashtbl.mem seen key) then begin
                Hashtbl.add seen key ();
                Queue.add kid queue
              end)
            (children program node ~max_crashes)
  done;
  (!found, !truncated)

let search ?(max_events = 60) ?(max_nodes = 200_000) ~max_crashes ~inputs_list program =
  List.find_map
    (fun inputs -> fst (search_one ~max_events ~max_nodes ~max_crashes ~inputs program))
    inputs_list

let certify ?(max_events = 60) ?(max_nodes = 200_000) ~max_crashes ~inputs_list program =
  let truncated = ref false in
  let rec loop = function
    | [] -> Ok ()
    | inputs :: rest -> (
        match search_one ~max_events ~max_nodes ~max_crashes ~inputs program with
        | Some r, _ -> Error r
        | None, tr ->
            truncated := !truncated || tr;
            loop rest)
  in
  let outcome = loop inputs_list in
  (outcome, !truncated)
