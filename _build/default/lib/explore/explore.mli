(** Bounded-exhaustive exploration of protocol executions under the paper's
    crash budgets, and the valency machinery of Section 3.

    An exploration context fixes a program and a budget parameter [z]; nodes
    are executions from the root, identified by their configuration, their
    crash-budget counter and the *history* of outputs (a crash resets a
    process's state, but "has decided v" is a property of the execution, so
    outputs are sticky).

    Exploration only expands events that change the node: steps by decided
    processes are no-ops and are skipped; crashes are expanded only when
    {!Budget.may_crash} allows them, so every explored execution lies in
    [E_z^*] of the root.  Because every expanded event strictly increases
    the step or crash counts, the explored space is a finite DAG. *)

type 'st node = {
  config : 'st Config.t;
  counter : Budget.counter;
  outputs : int option array;
      (** [outputs.(i)] is the first value process [i] output in this
          execution, surviving later crashes of [i] *)
  path_rev : Sched.event list;  (** events from the root, reversed *)
}

type 'st t
(** Exploration context with memoized reachable-decision sets. *)

val create : ?max_events:int -> z:int -> 'st Program.t -> 'st t
(** [max_events] (default 200) bounds the length of explored executions;
    exceeding it during an exhaustive query makes the answer [Unknown]. *)

val root : 'st t -> inputs:int array -> 'st node
val schedule_to : 'st node -> Sched.t

val children : 'st t -> 'st node -> (Sched.event * 'st node) list
(** State-changing events applicable at the node, within budget: one step
    per undecided process, plus allowed crashes (crashes of decided
    processes included — they reset the process). *)

val child : 'st t -> 'st node -> Sched.event -> 'st node option
(** Apply one event if applicable ([None] for a budget-violating crash).
    No-op steps return the node unchanged apart from the path. *)

val reachable_decisions : 'st t -> 'st node -> int list * bool
(** Values [v] such that some process has decided [v] in some execution
    extending the node within the budget; the flag reports truncation by
    [max_events] (in which case the list is a lower approximation). *)

type valency = Bivalent | Univalent of int | Unknown

val valency : 'st t -> 'st node -> valency
(** Valency with respect to the (depth-capped) execution set [E_z^*].
    [Bivalent] is sound even under truncation; [Univalent] requires the
    exploration to have been exhaustive; [Unknown] means the cap was hit
    before a second decision value was found. *)

val valency_restricted : 'st t -> 'st node -> procs:int list -> valency
(** Valency of a process subset: only events by [procs] are explored
    (the paper's "[P'] is v-univalent in α"). *)

val find_critical : 'st t -> 'st node -> 'st node option
(** Walk from a bivalent node to an execution that is critical w.r.t. the
    explored [E_z^*]: bivalent, with every child univalent.  [None] if the
    starting node is not bivalent.
    @raise Failure if truncation prevents a definite answer. *)

val teams : 'st t -> 'st node -> (int * int) list
(** At a critical node: [(proc, v)] for each process whose step-child is
    [v]-univalent — process [proc] is "on team [v]" (paper Section 3). *)

val poised_object : 'st Program.t -> 'st node -> int option
(** The single object every process is poised to access, if they all agree
    (Lemma 9 says they must at a critical execution).  Decided processes
    are ignored. *)

type classification =
  | N_recording
  | Hiding of int  (** [v]-hiding *)
  | Neither

val classify : 'st t -> 'st node -> classification
(** Observation 11's trichotomy at a critical node: compute
    [U_v = { value(O, C α σ) }] over nonempty at-most-once schedules σ
    starting with a team-[v] process, then test [n]-recording and
    [v]-hiding of the configuration. *)

val count_nodes : 'st t -> 'st node -> max_nodes:int -> int * bool
(** Number of distinct explored nodes reachable from the node (capped),
    with a truncation flag — used to compare the [E_z^*] and unrestricted
    frontiers in benchmarks. *)

(** {2 Theorem 13's chain construction (Figures 1 and 2)}

    The proof of Theorem 13 walks a chain of configurations
    [D_0, D'_0, ..., D_l, D'_l]: each [D'_i] is reached from [D_i] by a
    critical execution; if [D'_i] is [v]-hiding, the suffix processes
    crash ([lambda] in the paper) and the walk continues; if it is neither
    recording nor hiding (Observation 11's third case), the walk steps and
    crashes [p_{n-1}] first (the paper's special [D_1] construction); it
    stops at an [n]-recording configuration.  [theorem13_chain] replays
    this walk on a concrete protocol, reporting each round. *)

type chain_step = {
  schedule : Sched.t;  (** events from the chain's start to this critical execution *)
  step_classification : classification;
  step_teams : (int * int) list;
}

type chain_outcome =
  | Reached_recording  (** the walk ended at an [n]-recording configuration *)
  | Exhausted of int  (** round limit hit *)
  | Stuck of string
      (** the mechanized walk could not follow the proof (crash budget
          exhausted, truncation, or a non-bivalent configuration where the
          proof expects bivalence) — reported, never guessed *)

val theorem13_chain :
  ?max_rounds:int -> 'st t -> 'st node -> chain_step list * chain_outcome
(** Walk the chain from a bivalent node (default [max_rounds] is the
    process count). *)

val lemma10_check : 'st t -> 'st node -> (Sched.proc list * Sched.proc list) option
(** Lemma 10 at a critical node: search over at-most-once step schedules
    [p_i R_i] (first process on team [v]) and [p_j R_j] (first on the other
    team) that leave the common object with equal values; the lemma says any
    such pair must have [p_j = p_{n-1}] and [R_j] empty.  Returns a violating
    pair if one exists ([None] = the lemma's conclusion holds, or the node
    has no single poised object). *)

val bivalence_preserving_steps : 'st t -> 'st node -> Sched.t
(** The longest-possible adversary strategy that keeps the execution
    bivalent: repeatedly choose some child that is still bivalent.
    Lemma 6 says this must get stuck after finitely many events — the
    returned schedule ends at a critical execution.
    @raise Failure on truncation. *)
