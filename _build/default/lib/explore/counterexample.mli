(** Mechanical search for executions violating consensus properties —
    used to exhibit, e.g., the crash schedule that breaks the paper's
    [T_{n,n'}] recoverable protocol when run with [n' + 1] processes
    (experiment E4), and conversely to certify correct protocols by
    exhausting the bounded execution space without finding a violation. *)

type violation = Disagreement of int * int | Invalid of int
(** [Disagreement (v, w)]: two (possibly re-run) decisions with [v <> w].
    [Invalid v]: a decision that is no process's input. *)

type result = {
  violation : violation;
  inputs : int array;
  schedule : Sched.t;  (** execution from the initial configuration *)
}

val search :
  ?max_events:int ->
  ?max_nodes:int ->
  z:int ->
  inputs_list:int array list ->
  'st Program.t ->
  result option
(** Breadth-first search over [E_z^*] executions from each initial
    configuration, stopping at the first violation.  [max_nodes] (default
    200_000) bounds the number of distinct explored nodes per input
    vector. *)

val certify :
  ?max_events:int ->
  ?max_nodes:int ->
  z:int ->
  inputs_list:int array list ->
  'st Program.t ->
  (unit, result) Stdlib.result * bool
(** Like {!search} but returns [Ok ()] when no violation was found, plus a
    flag reporting whether any frontier was truncated (if [false], the
    certification is exhaustive for the given budget and caps). *)
