lib/explore/explore.mli: Budget Config Program Sched
