lib/explore/simultaneous.ml: Array Config Counterexample Exec Fun Hashtbl List Program Queue Sched
