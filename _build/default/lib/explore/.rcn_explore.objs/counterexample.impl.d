lib/explore/counterexample.ml: Array Budget Config Explore Fun Hashtbl List Queue Sched
