lib/explore/counterexample.mli: Program Sched Stdlib
