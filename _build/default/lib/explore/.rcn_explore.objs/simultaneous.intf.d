lib/explore/simultaneous.mli: Counterexample Program Sched Stdlib
