lib/explore/explore.ml: Array Budget Config Exec Fun Hashtbl List Option Program Sched
