type 'st node = {
  config : 'st Config.t;
  counter : Budget.counter;
  outputs : int option array;
  path_rev : Sched.event list;
}

(* Structural key: (locals, values, outputs, steps, crashes).  Inputs are
   constant per exploration so they need not participate. *)
type 'st key = 'st array * int array * int option array * int array * int array

type 'st t = {
  program : 'st Program.t;
  z : int;
  max_events : int;
  memo : ('st key, int list * bool) Hashtbl.t;
  memo_restricted : (int list * 'st key, int list * bool) Hashtbl.t;
}

let create ?(max_events = 200) ~z program =
  Program.validate program;
  {
    program;
    z;
    max_events;
    memo = Hashtbl.create 4096;
    memo_restricted = Hashtbl.create 1024;
  }

let root t ~inputs =
  let config = Config.initial t.program ~inputs in
  {
    config;
    counter = Budget.counter ~z:t.z ~nprocs:t.program.Program.nprocs;
    outputs = Array.make t.program.Program.nprocs None;
    path_rev = [];
  }

let schedule_to node = List.rev node.path_rev

let key_of node =
  let steps, crashes = Budget.state node.counter in
  (node.config.Config.locals, node.config.Config.values, node.outputs, steps, crashes)

let depth_of node =
  let steps, crashes = Budget.state node.counter in
  Array.fold_left ( + ) 0 steps + Array.fold_left ( + ) 0 crashes

let record_outputs (t : 'st t) config outputs =
  let outputs = Array.copy outputs in
  Array.iteri
    (fun i o ->
      if o = None then
        match Config.decided t.program config ~proc:i with
        | Some v -> outputs.(i) <- Some v
        | None -> ())
    outputs;
  outputs

let child t node event =
  match event with
  | Sched.Step p -> (
      match Config.decided t.program node.config ~proc:p with
      | Some _ -> Some { node with path_rev = event :: node.path_rev }
      | None ->
          let config = Exec.apply_step t.program node.config ~proc:p in
          Some
            {
              config;
              counter = Budget.record node.counter event;
              outputs = record_outputs t config node.outputs;
              path_rev = event :: node.path_rev;
            })
  | Sched.Crash_all -> None (* simultaneous crashes lie outside E_z^* *)
  | Sched.Crash p ->
      if not (Budget.may_crash node.counter p) then None
      else
        let config = Exec.apply_crash node.config t.program ~proc:p in
        Some
          {
            config;
            counter = Budget.record node.counter event;
            outputs = node.outputs;
            path_rev = event :: node.path_rev;
          }

let children t node =
  let nprocs = t.program.Program.nprocs in
  let steps =
    List.init nprocs (fun p ->
        match Config.decided t.program node.config ~proc:p with
        | Some _ -> None
        | None ->
            Option.map (fun n -> (Sched.Step p, n)) (child t node (Sched.Step p)))
    |> List.filter_map Fun.id
  in
  let crashes =
    List.init nprocs (fun p ->
        if Budget.may_crash node.counter p then
          Option.map (fun n -> (Sched.Crash p, n)) (child t node (Sched.Crash p))
        else None)
    |> List.filter_map Fun.id
  in
  steps @ crashes

let union_sorted a b = List.sort_uniq compare (List.rev_append a b)

let outputs_list outputs =
  Array.to_list outputs |> List.filter_map Fun.id |> List.sort_uniq compare

(* Reachable decision values, memoized over the node key.  [filter] selects
   which processes may act (None = all). *)
let rec decisions_from t ~filter node =
  let table_find, table_add =
    match filter with
    | None -> (Hashtbl.find_opt t.memo, Hashtbl.add t.memo)
    | Some procs ->
        let table = t.memo_restricted in
        ( (fun k -> Hashtbl.find_opt table (procs, k)),
          fun k v -> Hashtbl.add table (procs, k) v )
  in
  let key = key_of node in
  match table_find key with
  | Some cached -> cached
  | None ->
      let base = outputs_list node.outputs in
      let result =
        if depth_of node >= t.max_events then (base, true)
        else
          List.fold_left
            (fun (acc, truncated) (event, kid) ->
              let keep =
                match filter with
                | None -> true
                | Some procs -> (
                    match event with
                    | Sched.Step p | Sched.Crash p -> List.mem p procs
                    | Sched.Crash_all -> false)
              in
              if not keep then (acc, truncated)
              else
                let vs, tr = decisions_from t ~filter kid in
                (union_sorted acc vs, truncated || tr))
            (base, false) (children t node)
      in
      table_add key result;
      result

let reachable_decisions t node = decisions_from t ~filter:None node

type valency = Bivalent | Univalent of int | Unknown

let valency_of_result (values, truncated) =
  match values with
  | _ :: _ :: _ -> Bivalent
  | [ v ] when not truncated -> Univalent v
  | _ -> Unknown

let valency t node = valency_of_result (decisions_from t ~filter:None node)

let valency_restricted t node ~procs =
  let procs = List.sort_uniq compare procs in
  valency_of_result (decisions_from t ~filter:(Some procs) node)

let find_critical t start =
  let rec walk node =
    match valency t node with
    | Univalent _ | Unknown -> None
    | Bivalent -> (
        let kids = children t node in
        let bivalent_kid =
          List.find_opt (fun (_, kid) -> valency t kid = Bivalent) kids
        in
        match bivalent_kid with
        | Some (_, kid) -> walk kid
        | None ->
            if List.exists (fun (_, kid) -> valency t kid = Unknown) kids then
              failwith "Explore.find_critical: truncation prevents a definite answer"
            else Some node)
  in
  walk start

let teams t node =
  List.filter_map
    (fun (event, kid) ->
      match event with
      | Sched.Step p -> (
          match valency t kid with Univalent v -> Some (p, v) | Bivalent | Unknown -> None)
      | Sched.Crash _ | Sched.Crash_all -> None)
    (children t node)

let poised_object (program : 'st Program.t) node =
  let objs =
    List.init program.Program.nprocs (fun p ->
        match Config.view program node.config ~proc:p with
        | Program.Poised { obj; _ } -> Some obj
        | Program.Decided _ -> None)
    |> List.filter_map Fun.id
    |> List.sort_uniq compare
  in
  match objs with [ obj ] -> Some obj | [] | _ :: _ -> None

type classification = N_recording | Hiding of int | Neither

let classify t node =
  match poised_object t.program node with
  | None -> Neither
  | Some obj ->
      let team_assignment = teams t node in
      let members v = List.filter_map (fun (p, w) -> if w = v then Some p else None) team_assignment in
      let t0 = members 0 and t1 = members 1 in
      if t0 = [] || t1 = [] then Neither
      else
        let participants = List.sort compare (t0 @ t1) in
        let u_set first_team_members =
          Sched.at_most_once_of participants
          |> List.filter_map (function
               | [] -> None
               | first :: _ as procs ->
                   if List.mem first first_team_members then
                     let final = Exec.run_procs t.program node.config procs in
                     Some final.Config.values.(obj)
                   else None)
          |> List.sort_uniq compare
        in
        let u0 = u_set t0 and u1 = u_set t1 in
        let disjoint = List.for_all (fun v -> not (List.mem v u1)) u0 in
        if not disjoint then Neither
        else
          let here = node.config.Config.values.(obj) in
          let hit0 = List.mem here u0 and hit1 = List.mem here u1 in
          let recording =
            ((not hit0) || List.length t1 = 1) && ((not hit1) || List.length t0 = 1)
          in
          if recording then N_recording
          else if hit0 then Hiding 0
          else if hit1 then Hiding 1
          else Neither

let count_nodes t start ~max_nodes =
  let seen = Hashtbl.create 1024 in
  let truncated = ref false in
  let rec visit node =
    if Hashtbl.length seen >= max_nodes then truncated := true
    else
      let key = key_of node in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        if depth_of node < t.max_events then
          List.iter (fun (_, kid) -> visit kid) (children t node)
        else truncated := true
      end
  in
  visit start;
  (Hashtbl.length seen, !truncated)

type chain_step = {
  schedule : Sched.t;
  step_classification : classification;
  step_teams : (int * int) list;
}

type chain_outcome = Reached_recording | Exhausted of int | Stuck of string

let theorem13_chain ?max_rounds t start =
  let nprocs = t.program.Program.nprocs in
  let max_rounds = Option.value max_rounds ~default:nprocs in
  let crash_suffix node count =
    (* The paper's lambda_{n-i}: crash the [count] highest-identifier
       processes in increasing order. *)
    let rec apply node p =
      if p >= nprocs then Some node
      else
        match child t node (Sched.Crash p) with
        | Some node' -> apply node' (p + 1)
        | None -> None
    in
    apply node (nprocs - count)
  in
  let rec round node i steps_rev =
    if i >= max_rounds then (List.rev steps_rev, Exhausted i)
    else
      match find_critical t node with
      | exception Failure msg -> (List.rev steps_rev, Stuck msg)
      | None -> (List.rev steps_rev, Stuck "configuration is not bivalent")
      | Some crit ->
          let classification = classify t crit in
          let step =
            {
              schedule = schedule_to crit;
              step_classification = classification;
              step_teams = teams t crit;
            }
          in
          let steps_rev = step :: steps_rev in
          let continue_from node' = round node' (i + 1) steps_rev in
          (match classification with
          | N_recording -> (List.rev steps_rev, Reached_recording)
          | Hiding _ -> (
              match crash_suffix crit (i + 1) with
              | Some node' -> continue_from node'
              | None -> (List.rev steps_rev, Stuck "crash budget exhausted for lambda"))
          | Neither -> (
              (* The paper's special construction: step p_{n-1}, then crash
                 it, and look for the next critical execution. *)
              match child t crit (Sched.Step (nprocs - 1)) with
              | None -> (List.rev steps_rev, Stuck "p_{n-1} cannot step")
              | Some stepped -> (
                  match child t stepped (Sched.Crash (nprocs - 1)) with
                  | Some node' -> continue_from node'
                  | None -> (List.rev steps_rev, Stuck "cannot crash p_{n-1}"))))
  in
  round start 0 []

let lemma10_check t node =
  match poised_object t.program node with
  | None -> None
  | Some obj ->
      let nprocs = t.program.Program.nprocs in
      let team_assignment = teams t node in
      let team_of p = List.assoc_opt p team_assignment in
      (* All (first, final value) pairs over nonempty at-most-once step
         schedules, with the full schedule retained for reporting. *)
      let outcomes =
        Sched.at_most_once ~nprocs:nprocs
        |> List.filter_map (function
             | [] -> None
             | first :: _ as procs ->
                 Option.map
                   (fun team ->
                     let final = Exec.run_procs t.program node.config procs in
                     (procs, team, final.Config.values.(obj)))
                   (team_of first))
      in
      (* A violating pair: different first teams, equal final object values,
         and neither side is the solo step of p_{n-1} (the one shape
         Lemma 10 permits). *)
      List.find_map
        (fun (procs_i, team_i, value_i) ->
          List.find_map
            (fun (procs_j, team_j, value_j) ->
              if
                team_i <> team_j && value_i = value_j
                && procs_i <> [ nprocs - 1 ]
                && procs_j <> [ nprocs - 1 ]
              then Some (procs_i, procs_j)
              else None)
            outcomes)
        outcomes

let bivalence_preserving_steps t start =
  let rec walk node acc =
    match valency t node with
    | Unknown -> failwith "Explore.bivalence_preserving_steps: truncated"
    | Univalent _ -> List.rev acc
    | Bivalent -> (
        let next =
          List.find_opt (fun (_, kid) -> valency t kid = Bivalent) (children t node)
        in
        match next with
        | Some (event, kid) -> walk kid (event :: acc)
        | None -> List.rev acc)
  in
  walk start []
