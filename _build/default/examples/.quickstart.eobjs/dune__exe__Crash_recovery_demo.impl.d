examples/crash_recovery_demo.ml: Adversary Array Budget Checker Classic Config Counterexample Exec Explore Format List Objtype Printf Program Sched Tnn_protocol
