examples/universal_queue.ml: Adversary Array Budget Config Exec Format Gallery List Objtype Printf Program Sched String Universal
