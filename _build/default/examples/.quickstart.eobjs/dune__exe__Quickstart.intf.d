examples/quickstart.mli:
