examples/recoverable_gap.mli:
