examples/quickstart.ml: Certificate Dot Format Gallery List Numbers Objtype
