examples/recoverable_gap.ml: Array Counterexample Format Gallery List Numbers Objtype Robustness Sched String Tnn_protocol
