examples/tournament_consensus.mli:
