examples/tournament_consensus.ml: Adversary Array Budget Checker Config Exec Format Gallery List Numbers Objtype Option Sched String Tournament
