(* Crash-recovery in the simulator: watch protocols survive (or fail to
   survive) individual crashes, and inspect the valency machinery of the
   paper's Section 3 on a live protocol.

   Run with:  dune exec examples/crash_recovery_demo.exe *)

let show_trace program inputs sched =
  let c0 = Config.initial program ~inputs in
  let final, trace = Exec.run_schedule program c0 sched in
  List.iter
    (function
      | Exec.Stepped { proc; obj; op; response; no_op } ->
          if no_op then Format.printf "  p%d steps (already decided, no-op)@." proc
          else
            let ty, _ = program.Program.heap.(obj) in
            Format.printf "  p%d applies %s to obj%d -> %s@." proc
              (ty.Objtype.op_name op) obj
              (ty.Objtype.response_name response)
      | Exec.Crashed proc -> Format.printf "  p%d CRASHES (local state reset)@." proc
      | Exec.Crashed_all -> Format.printf "  SIMULTANEOUS CRASH (everyone reset)@.")
    trace;
  Array.iteri
    (fun i d ->
      match d with
      | Some v -> Format.printf "  p%d decided %d@." i v
      | None -> Format.printf "  p%d undecided@." i)
    (Config.decisions program final);
  final

let () =
  Format.printf "=== CAS consensus survives crashes (recoverable) ===@.";
  let cas = Classic.cas_consensus ~nprocs:2 in
  let sched =
    Sched.[ step 0; crash 1; step 1; crash 1; step 1; step 1; step 0 ]
  in
  let final = show_trace cas [| 0; 1 |] sched in
  Format.printf "verdict: %a@.@." Checker.pp_verdict (Checker.consensus cas final);

  Format.printf "=== TAS consensus is NOT recoverable (Golab 2020) ===@.";
  let tas = Classic.tas_consensus_2 in
  (match
     Counterexample.search ~z:1
       ~inputs_list:[ [| 0; 1 |]; [| 1; 0 |] ]
       tas
   with
  | Some r ->
      Format.printf "violating crash schedule found by the model checker:@.";
      let _ = show_trace tas r.Counterexample.inputs r.Counterexample.schedule in
      Format.printf
        "p1 crashed between winning the TAS and remembering it; on recovery@.\
         it loses the TAS and adopts the other input — agreement breaks.@.@."
  | None -> Format.printf "no violation (unexpected)@.");

  Format.printf "=== Valency analysis (paper Section 3) on CAS consensus ===@.";
  let ctx = Explore.create ~z:1 cas in
  let root = Explore.root ctx ~inputs:[| 0; 1 |] in
  (match Explore.valency ctx root with
  | Explore.Bivalent -> Format.printf "initial configuration: bivalent (Observation 1)@."
  | Explore.Univalent v -> Format.printf "initial configuration: %d-univalent?!@." v
  | Explore.Unknown -> Format.printf "initial configuration: unknown@.");
  (match Explore.find_critical ctx root with
  | Some crit ->
      Format.printf "critical execution: [%s]@."
        (Sched.to_string (Explore.schedule_to crit));
      let teams = Explore.teams ctx crit in
      List.iter (fun (p, v) -> Format.printf "  p%d is on team %d@." p v) teams;
      (match Explore.poised_object cas crit with
      | Some obj ->
          Format.printf "  every process is poised at object %d (Lemma 9 holds)@." obj
      | None -> Format.printf "  processes poised at different objects?!@.");
      (match Explore.classify ctx crit with
      | Explore.N_recording ->
          Format.printf "  the critical configuration is n-recording (Observation 11)@."
      | Explore.Hiding v -> Format.printf "  the critical configuration is %d-hiding@." v
      | Explore.Neither -> Format.printf "  neither recording nor hiding@.")
  | None -> Format.printf "no critical execution (unexpected)@.");

  Format.printf "@.=== A crash-storm adversary against the T_{5,2} protocol ===@.";
  let p = Tnn_protocol.recoverable ~n:5 ~n':2 in
  let c0 = Config.initial p ~inputs:[| 1; 0 |] in
  let adv = Adversary.crash_storm ~period:2 ~seed:7 ~nprocs:2 in
  let budget = Budget.counter ~z:2 ~nprocs:2 in
  let final, sched, out =
    Exec.run_adversary p c0 ~pick:(fun ~decided b -> adv ~decided b) ~budget ~rwf_bound:2
      ~fuel:200 ()
  in
  Format.printf "schedule: %s@." (Sched.to_string sched);
  Format.printf "all decided: %b, recoverable wait-freedom violations: %s@."
    out.Exec.all_decided
    (match out.Exec.rwf_violation with
    | None -> "none"
    | Some (p, s) -> Printf.sprintf "p%d ran %d steps without deciding" p s);
  Format.printf "verdict: %a@." Checker.pp_verdict (Checker.consensus p final)
