(* Universality: build a linearizable, crash-recoverable FIFO queue out of
   consensus objects with the round-based universal construction, then
   torture it with crashing adversaries (experiment E10).

   Run with:  dune exec examples/universal_queue.exe *)

let () =
  let base = Gallery.bounded_queue () in
  (* Three client processes, each with its own operation sequence:
     ops: 0 = enq 0, 1 = enq 1, 2 = deq. *)
  let workload = [| [ 0; 2; 1 ]; [ 1; 2 ]; [ 2; 2; 0 ] |] in
  let program = Universal.build ~base ~base_initial:0 workload in
  Format.printf "program: %s@." program.Program.name;
  Format.printf "heap: %d one-shot consensus objects (rounds)@.@."
    (Array.length program.Program.heap);

  let nprocs = Array.length workload in
  let inputs = Array.make nprocs 0 in
  let c0 = Config.initial program ~inputs in

  (* Crash-free run. *)
  let adv = Adversary.round_robin ~nprocs in
  let budget = Budget.counter ~z:1 ~nprocs in
  let final, _, out =
    Exec.run_adversary program c0 ~pick:(fun ~decided b -> adv ~decided b) ~budget ~fuel:500 ()
  in
  let report = Universal.check_linearizable program ~base ~base_initial:0 workload final in
  Format.printf "crash-free: all decided %b, linearizable %b@." out.Exec.all_decided
    report.Universal.ok;
  Format.printf "linearization: %s@.@."
    (String.concat " -> "
       (List.map
          (fun (p, i) ->
            let op = List.nth workload.(p) i in
            Printf.sprintf "p%d:%s" p (base.Objtype.op_name op))
          report.Universal.linearization));

  (* Now with crashes: recovery replays the decided rounds (the consensus
     objects are persistent) and re-discovers the process's own past wins —
     the construction is detectable. *)
  let trials = 500 in
  let ok = ref 0 in
  for seed = 1 to trials do
    let adv = Adversary.random ~crash_prob:0.3 ~seed ~nprocs in
    let budget = Budget.counter ~z:1 ~nprocs in
    let final, _, out =
      Exec.run_adversary program c0 ~pick:(fun ~decided b -> adv ~decided b) ~budget ~fuel:3000 ()
    in
    let report = Universal.check_linearizable program ~base ~base_initial:0 workload final in
    if out.Exec.all_decided && report.Universal.ok then incr ok
  done;
  Format.printf "crashing adversaries: %d/%d runs complete and linearizable@." !ok trials;

  (* Show one crashy linearization differs but is still valid. *)
  let adv = Adversary.random ~crash_prob:0.4 ~seed:11 ~nprocs in
  let budget = Budget.counter ~z:1 ~nprocs in
  let final, sched, _ =
    Exec.run_adversary program c0 ~pick:(fun ~decided b -> adv ~decided b) ~budget ~fuel:3000 ()
  in
  let report = Universal.check_linearizable program ~base ~base_initial:0 workload final in
  Format.printf "@.one crashy run (%d events, %d crashes):@." (List.length sched)
    (List.length
       (List.filter (function Sched.Crash _ | Sched.Crash_all -> true | Sched.Step _ -> false) sched));
  Format.printf "linearizable: %b; order: %s@." report.Universal.ok
    (String.concat " -> "
       (List.map (fun (p, i) -> Printf.sprintf "p%d#%d" p i) report.Universal.linearization))
