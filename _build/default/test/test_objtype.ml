(* Unit and property tests for Objtype: well-formedness, determinism,
   readability detection, schedule application. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let trivial =
  Objtype.make ~name:"trivial" ~num_values:2 ~num_ops:1 ~num_responses:2 (fun v _ -> (v, v))

let test_make_validates () =
  let ill f = Alcotest.check_raises "ill-formed" (Objtype.Ill_formed "") (fun () ->
      try f () with Objtype.Ill_formed _ -> raise (Objtype.Ill_formed ""))
  in
  ill (fun () ->
      ignore (Objtype.make ~name:"bad" ~num_values:0 ~num_ops:1 ~num_responses:1 (fun v _ -> (0, v))));
  ill (fun () ->
      ignore (Objtype.make ~name:"bad" ~num_values:2 ~num_ops:1 ~num_responses:1 (fun _ _ -> (1, 0))));
  ill (fun () ->
      ignore (Objtype.make ~name:"bad" ~num_values:2 ~num_ops:1 ~num_responses:1 (fun _ _ -> (0, 5))));
  ill (fun () ->
      ignore
        (Objtype.make ~name:"bad" ~num_values:2 ~num_ops:1 ~num_responses:1 ~default_initial:7
           (fun v _ -> (0, v))))

let test_apply_ranges () =
  Alcotest.check_raises "value range" (Invalid_argument "Objtype.apply: value 9 out of range for trivial")
    (fun () -> ignore (Objtype.apply trivial 9 0));
  Alcotest.check_raises "op range" (Invalid_argument "Objtype.apply: op 3 out of range for trivial")
    (fun () -> ignore (Objtype.apply trivial 0 3))

let test_memoized_delta_total () =
  (* make evaluates the full grid; a delta raising on some cell must fail
     eagerly rather than at first use. *)
  Alcotest.check_raises "eager evaluation" Exit (fun () ->
      ignore
        (Objtype.make ~name:"lazybomb" ~num_values:2 ~num_ops:2 ~num_responses:2 (fun v o ->
             if v = 1 && o = 1 then raise Exit else (0, v))))

let test_apply_schedule () =
  let tas = Gallery.test_and_set in
  let responses, final = Objtype.apply_schedule tas 0 [ 0; 0; 1 ] in
  Alcotest.(check (list int)) "responses" [ 0; 1; 1 ] responses;
  check_int "final" 1 final;
  let responses, final = Objtype.apply_schedule tas 0 [] in
  Alcotest.(check (list int)) "empty" [] responses;
  check_int "unchanged" 0 final

let test_read_detection () =
  check_bool "register readable" true (Objtype.is_readable (Gallery.register 3));
  check_int "register read op" 0 (Option.get (Objtype.read_op (Gallery.register 3)));
  check_bool "tas readable" true (Objtype.is_readable Gallery.test_and_set);
  check_int "tas read op is op 1" 1 (Option.get (Objtype.read_op Gallery.test_and_set));
  check_bool "queue not readable" false (Objtype.is_readable (Gallery.bounded_queue ()));
  check_bool "tnn not readable" false (Objtype.is_readable (Gallery.tnn ~n:4 ~n':2));
  (* CAS is readable through cas(a,a). *)
  check_bool "cas readable" true (Objtype.is_readable (Gallery.compare_and_swap 3))

let test_read_op_requires_injective () =
  (* An identity op whose response is constant is not a Read. *)
  let t =
    Objtype.make ~name:"const-resp" ~num_values:3 ~num_ops:1 ~num_responses:1 (fun v _ -> (0, v))
  in
  check_bool "not readable" false (Objtype.is_readable t)

let test_read_decoder_inverse () =
  List.iter
    (fun (name, ty) ->
      match Objtype.read_decoder ty with
      | None -> ()
      | Some (op, decode) ->
          for v = 0 to ty.Objtype.num_values - 1 do
            let r, v' = Objtype.apply ty v op in
            check_int (name ^ ": read preserves value") v v';
            check_int (name ^ ": decoder inverts response") v (decode r)
          done)
    (Gallery.all ())

let test_reachable_values () =
  let tas = Gallery.test_and_set in
  Alcotest.(check (list int)) "tas from 0" [ 0; 1 ] (Objtype.reachable_values tas ~from:0);
  Alcotest.(check (list int)) "tas from 1" [ 1 ] (Objtype.reachable_values tas ~from:1);
  let tnn = Gallery.tnn ~n:4 ~n':2 in
  check_int "tnn reaches everything from s" tnn.Objtype.num_values
    (List.length (Objtype.reachable_values tnn ~from:Gallery.tnn_s))

let test_equal_behaviour () =
  check_bool "same table" true
    (Objtype.equal_behaviour (Gallery.register 3) (Gallery.register 3));
  check_bool "different types" false
    (Objtype.equal_behaviour (Gallery.register 3) (Gallery.swap 3));
  check_bool "names ignored" true
    (Objtype.equal_behaviour
       (Objtype.make ~name:"a" ~num_values:2 ~num_ops:1 ~num_responses:2 (fun v _ -> (v, v)))
       (Objtype.make ~name:"b" ~num_values:2 ~num_ops:1 ~num_responses:2 (fun v _ -> (v, v))))

let test_spec_roundtrip () =
  List.iter
    (fun (name, ty) ->
      let ty' = Objtype.of_spec_string (Objtype.to_spec_string ty) in
      check_bool (name ^ " behaviour roundtrips") true (Objtype.equal_behaviour ty ty');
      check_bool (name ^ " name roundtrips") true (ty'.Objtype.name = ty.Objtype.name);
      (* names roundtrip for every component *)
      for v = 0 to ty.Objtype.num_values - 1 do
        check_bool (name ^ " value names") true (ty.Objtype.value_name v = ty'.Objtype.value_name v)
      done;
      for o = 0 to ty.Objtype.num_ops - 1 do
        check_bool (name ^ " op names") true (ty.Objtype.op_name o = ty'.Objtype.op_name o)
      done)
    (Gallery.all ())

let test_spec_parse_errors () =
  let rejected text =
    check_bool ("rejected: " ^ text) true
      (try
         ignore (Objtype.of_spec_string text);
         false
       with Objtype.Ill_formed _ -> true)
  in
  rejected "";
  rejected "name x\ncounts 2 1\n";
  rejected "name x\ncounts 2 1 1\ninitial 0\n" (* missing delta cells *);
  rejected "name x\ncounts 2 1 1\ninitial 0\ndelta 0 0 -> 0 0\ndelta 1 0 -> 5 0\n"
    (* out-of-range response *);
  rejected "nonsense line without meaning here\n"

(* ---------------- property tests ---------------- *)

let genome_space = { Synth.num_values = 4; num_rws = 3; num_responses = 3 }

let arbitrary_genome =
  QCheck.make
    ~print:(fun g -> Format.asprintf "%a" Objtype.pp_table (Synth.to_objtype g))
    (QCheck.Gen.map
       (fun seed -> Synth.random_genome (Random.State.make [| seed |]) genome_space)
       QCheck.Gen.int)

let prop_random_types_well_formed =
  QCheck.Test.make ~name:"synthesized types are well-formed and readable" ~count:100
    arbitrary_genome (fun g ->
      let ty = Synth.to_objtype g in
      Objtype.is_readable ty
      &&
      (* every transition is in range (make would have raised otherwise) *)
      ty.Objtype.num_ops = genome_space.Synth.num_rws + 1)

let prop_schedule_fold =
  QCheck.Test.make ~name:"apply_schedule = fold of apply" ~count:100
    QCheck.(pair arbitrary_genome (list (int_bound 2)))
    (fun (g, ops) ->
      let ty = Synth.to_objtype g in
      let _, final = Objtype.apply_schedule ty 0 ops in
      let expected = List.fold_left (fun v o -> snd (Objtype.apply ty v o)) 0 ops in
      final = expected)

let prop_spec_roundtrip_random =
  QCheck.Test.make ~name:"serialization roundtrips on random types" ~count:100
    arbitrary_genome (fun g ->
      let ty = Synth.to_objtype g in
      Objtype.equal_behaviour ty (Objtype.of_spec_string (Objtype.to_spec_string ty)))

let suite =
  [
    Alcotest.test_case "make validates specifications" `Quick test_make_validates;
    Alcotest.test_case "apply checks ranges" `Quick test_apply_ranges;
    Alcotest.test_case "make evaluates the whole grid eagerly" `Quick test_memoized_delta_total;
    Alcotest.test_case "apply_schedule threads values" `Quick test_apply_schedule;
    Alcotest.test_case "read operation detection" `Quick test_read_detection;
    Alcotest.test_case "read requires injective responses" `Quick test_read_op_requires_injective;
    Alcotest.test_case "read_decoder inverts read responses" `Quick test_read_decoder_inverse;
    Alcotest.test_case "reachable_values" `Quick test_reachable_values;
    Alcotest.test_case "equal_behaviour" `Quick test_equal_behaviour;
    Alcotest.test_case "spec serialization roundtrips" `Quick test_spec_roundtrip;
    Alcotest.test_case "spec parser rejects malformed input" `Quick test_spec_parse_errors;
    QCheck_alcotest.to_alcotest prop_random_types_well_formed;
    QCheck_alcotest.to_alcotest prop_schedule_fold;
    QCheck_alcotest.to_alcotest prop_spec_roundtrip_random;
  ]
