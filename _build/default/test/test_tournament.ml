(* Tests for the tournament construction: n-process recoverable consensus
   from clean recording certificates (the executable face of DFFR Theorem 8
   + this paper's Theorem 13 at full strength). *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let binary_inputs n = List.init (1 lsl n) (fun mask -> Array.init n (fun i -> (mask lsr i) land 1))

let plan_exn ty ~nprocs =
  match Tournament.plan ty ~nprocs with
  | Ok plan -> plan
  | Error m -> Alcotest.failf "plan failed: %s" m

let test_plan_shape () =
  let plan = plan_exn (Gallery.team_ladder ~cap:3) ~nprocs:3 in
  check_int "two internal nodes for three processes" 2 (Tournament.node_count plan);
  let plan = plan_exn (Gallery.team_ladder ~cap:4) ~nprocs:4 in
  check_int "three internal nodes for four processes" 3 (Tournament.node_count plan);
  let rendered = Format.asprintf "%a" Tournament.pp_plan plan in
  check_bool "plan renders" true (String.length rendered > 0)

let test_plan_fails_below_recording_level () =
  (* team-ladder-4 has recoverable consensus number 4: a 5-process
     tournament must be unplannable (Theorem 13's necessity, seen by the
     builder). *)
  (match Tournament.plan (Gallery.team_ladder ~cap:4) ~nprocs:5 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "5-process plan on a level-4 type should fail");
  (match Tournament.plan Gallery.test_and_set ~nprocs:2 with
  | Error _ -> () (* TAS is not 2-recording *)
  | Ok _ -> Alcotest.fail "TAS tournament should fail");
  match Tournament.plan (Gallery.register 3) ~nprocs:1 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "single-process tournament rejected"

let storms ?(trials = 25) plan ~nprocs =
  let p = Tournament.consensus plan in
  for seed = 1 to trials do
    List.iter
      (fun inputs ->
        let adv = Adversary.random ~crash_prob:0.25 ~seed ~nprocs in
        let c0 = Config.initial p ~inputs in
        let final, sched, out =
          Exec.run_adversary p c0
            ~pick:(fun ~decided b -> adv ~decided b)
            ~budget:(Budget.counter ~z:1 ~nprocs)
            ~rwf_bound:(4 * (nprocs + 2)) ~fuel:4000 ()
        in
        check_bool (Printf.sprintf "completes (seed %d)" seed) true out.Exec.all_decided;
        check_bool "no rwf violation" true (out.Exec.rwf_violation = None);
        check_bool
          (Printf.sprintf "consensus (seed %d, %s)" seed (Sched.to_string sched))
          true
          (Checker.is_ok (Checker.consensus p final)))
      (binary_inputs nprocs)
  done

let test_three_process_storms () =
  storms (plan_exn (Gallery.team_ladder ~cap:3) ~nprocs:3) ~nprocs:3

let test_four_process_storms () =
  storms ~trials:8 (plan_exn (Gallery.team_ladder ~cap:4) ~nprocs:4) ~nprocs:4

let test_three_process_bounded_certify () =
  (* Bounded model check: every E_1^* execution of length <= 24 (up to the
     node cap) is violation-free.  The space is too large to exhaust in a
     unit test; truncation is expected and reported. *)
  let p = Tournament.consensus (plan_exn (Gallery.team_ladder ~cap:3) ~nprocs:3) in
  match
    Counterexample.certify ~z:1 ~max_events:24 ~max_nodes:60_000
      ~inputs_list:(binary_inputs 3) p
  with
  | Ok (), _truncated -> ()
  | Error r, _ ->
      Alcotest.failf "tournament violated: %s inputs %s"
        (Sched.to_string r.Counterexample.schedule)
        (String.concat "" (List.map string_of_int (Array.to_list r.Counterexample.inputs)))

let test_crossing_witness_tournament () =
  (* The x4-style crossing witness has recoverable consensus number 2, so a
     2-process tournament plans and works; 3 processes must fail. *)
  let ty = Gallery.crossing_witness ~n:4 in
  (match Tournament.plan ty ~nprocs:3 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "3-process plan on rcn-2 type should fail");
  let plan = plan_exn ty ~nprocs:2 in
  let p = Tournament.consensus plan in
  match
    Counterexample.certify ~z:1 ~max_events:40 ~max_nodes:400_000
      ~inputs_list:(binary_inputs 2) p
  with
  | Ok (), _truncated -> ()
  | Error r, _ ->
      Alcotest.failf "2-proc tournament violated: %s" (Sched.to_string r.Counterexample.schedule)

let test_simultaneous_crashes () =
  (* The tournament also survives the simultaneous-crash model. *)
  let p = Tournament.consensus (plan_exn (Gallery.team_ladder ~cap:3) ~nprocs:3) in
  match
    Simultaneous.certify ~max_events:22 ~max_crashes:1 ~inputs_list:[ [| 0; 1; 1 |]; [| 1; 0; 0 |] ] p
  with
  | Ok (), _ -> ()
  | Error r, _ ->
      Alcotest.failf "simultaneous violation: %s" (Sched.to_string r.Simultaneous.schedule)

let test_decision_is_first_announcer_consistent () =
  (* Crash-free round robin from every input vector: the decision equals
     some process's input and everyone agrees — and with round-robin
     starting at p0, the winner is p0. *)
  let plan = plan_exn (Gallery.team_ladder ~cap:3) ~nprocs:3 in
  let p = Tournament.consensus plan in
  List.iter
    (fun inputs ->
      let adv = Adversary.round_robin ~nprocs:3 in
      let c0 = Config.initial p ~inputs in
      let final, _, out =
        Exec.run_adversary p c0
          ~pick:(fun ~decided b -> adv ~decided b)
          ~budget:(Budget.counter ~z:1 ~nprocs:3)
          ~fuel:200 ()
      in
      check_bool "completes" true out.Exec.all_decided;
      check_bool "agrees on p0's input" true
        (Array.for_all (fun d -> d = Some inputs.(0)) (Config.decisions p final)))
    (binary_inputs 3)

let plan_cache = Hashtbl.create 8

let cached_plan cap n =
  match Hashtbl.find_opt plan_cache (cap, n) with
  | Some plan -> plan
  | None ->
      let plan = Tournament.plan (Gallery.team_ladder ~cap) ~nprocs:n in
      Hashtbl.add plan_cache (cap, n) plan;
      plan

let prop_tournament_random_storms =
  (* Random (cap, n <= cap, seed): planning succeeds (ladder-cap has
     recoverable consensus number cap >= n) and a random crashy run
     reaches correct consensus. *)
  let gen =
    QCheck.Gen.(
      map3
        (fun cap n seed -> (2 + cap, 2 + n, seed))
        (int_bound 2) (int_bound 1) (int_bound 10_000))
  in
  QCheck.Test.make ~name:"tournaments on random ladders under random storms" ~count:25
    (QCheck.make ~print:(fun (cap, n, seed) -> Printf.sprintf "cap=%d n=%d seed=%d" cap n seed) gen)
    (fun (cap, n, seed) ->
      let n = min n cap in
      match cached_plan cap n with
      | Error _ -> false
      | Ok plan ->
          let p = Tournament.consensus plan in
          let inputs = Array.init n (fun i -> (seed + i) mod 2) in
          let adv = Adversary.random ~crash_prob:0.25 ~seed ~nprocs:n in
          let c0 = Config.initial p ~inputs in
          let final, _, out =
            Exec.run_adversary p c0
              ~pick:(fun ~decided b -> adv ~decided b)
              ~budget:(Budget.counter ~z:1 ~nprocs:n)
              ~fuel:4000 ()
          in
          out.Exec.all_decided && Checker.is_ok (Checker.consensus p final))

let suite =
  [
    Alcotest.test_case "plan shapes" `Quick test_plan_shape;
    Alcotest.test_case "planning fails below the recording level" `Quick test_plan_fails_below_recording_level;
    Alcotest.test_case "3-process crash storms" `Slow test_three_process_storms;
    Alcotest.test_case "4-process crash storms" `Slow test_four_process_storms;
    Alcotest.test_case "3-process bounded certification" `Slow test_three_process_bounded_certify;
    Alcotest.test_case "crossing witness: 2 plans, 3 does not" `Quick test_crossing_witness_tournament;
    Alcotest.test_case "survives simultaneous crashes" `Slow test_simultaneous_crashes;
    Alcotest.test_case "round-robin decides the first mover's input" `Quick test_decision_is_first_announcer_consistent;
    QCheck_alcotest.to_alcotest prop_tournament_random_storms;
  ]
