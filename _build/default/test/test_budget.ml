(* Tests for the crash-budget execution sets E_z and E_z^* (Section 3). *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_paper_example () =
  (* "if n = 2, then exec(C, p1 c1 p0) ∈ E_1(C) but ∉ E_1^*(C)" *)
  let sched = Sched.[ step 1; crash 1; step 0 ] in
  check_bool "in E_1" true (Budget.within_e_z ~z:1 ~nprocs:2 sched);
  check_bool "not in E_1*" false (Budget.within_e_z_star ~z:1 ~nprocs:2 sched)

let test_p0_never_crashes () =
  let sched = Sched.[ step 0; crash 0 ] in
  check_bool "E_z forbids c0" false (Budget.within_e_z ~z:3 ~nprocs:2 sched);
  check_bool "E_z* forbids c0" false (Budget.within_e_z_star ~z:3 ~nprocs:2 sched)

let test_budget_scales_with_lower_steps () =
  (* n = 2, z = 1: after one step of p0, p1 may crash up to zn = 2 times. *)
  let ok = Sched.[ step 0; crash 1; crash 1 ] in
  check_bool "two crashes allowed" true (Budget.within_e_z_star ~z:1 ~nprocs:2 ok);
  let too_many = Sched.[ step 0; crash 1; crash 1; crash 1 ] in
  check_bool "three crashes rejected" false (Budget.within_e_z_star ~z:1 ~nprocs:2 too_many);
  check_bool "higher z allows" true (Budget.within_e_z_star ~z:2 ~nprocs:2 too_many)

let test_only_lower_ids_count () =
  (* Steps of p2 do not buy crashes for p1. *)
  let sched = Sched.[ step 2; crash 1 ] in
  check_bool "p2 steps don't fund c1" false (Budget.within_e_z_star ~z:5 ~nprocs:3 sched);
  let sched = Sched.[ step 0; crash 2 ] in
  check_bool "p0 steps fund c2" true (Budget.within_e_z_star ~z:1 ~nprocs:3 sched)

let test_counter_matches_predicate () =
  (* Replaying any schedule through the incremental counter must agree with
     the prefix-closed predicate. *)
  let replay ~z ~nprocs sched =
    let rec loop c = function
      | [] -> true
      | (Sched.Crash p as e) :: rest -> Budget.may_crash c p && loop (Budget.record c e) rest
      | (Sched.Step _ as e) :: rest -> loop (Budget.record c e) rest
      | Sched.Crash_all :: _ -> false
    in
    loop (Budget.counter ~z ~nprocs) sched
  in
  let schedules =
    [
      Sched.[ step 0; crash 1; step 0 ];
      Sched.[ step 1; crash 1 ];
      Sched.[ step 0; step 1; crash 2; crash 2; crash 2 ];
      Sched.[ step 0; crash 1; crash 1; crash 1 ];
      [];
    ]
  in
  List.iter
    (fun sched ->
      check_bool
        (Printf.sprintf "agree on [%s]" (Sched.to_string sched))
        (Budget.within_e_z_star ~z:1 ~nprocs:3 sched)
        (replay ~z:1 ~nprocs:3 sched))
    schedules

let test_headroom () =
  let c = Budget.counter ~z:1 ~nprocs:2 in
  check_int "p0 headroom always 0" 0 (Budget.crash_headroom c 0);
  check_int "p1 headroom initially 0" 0 (Budget.crash_headroom c 1);
  let c = Budget.record c (Sched.step 0) in
  check_int "after p0 step: zn = 2" 2 (Budget.crash_headroom c 1);
  let c = Budget.record c (Sched.crash 1) in
  check_int "consumed one" 1 (Budget.crash_headroom c 1);
  check_int "steps below p1" 1 (Budget.steps_below c 1);
  check_int "steps below p0" 0 (Budget.steps_below c 0)

let test_record_rejects_over_budget () =
  let c = Budget.counter ~z:1 ~nprocs:2 in
  Alcotest.check_raises "over budget crash"
    (Invalid_argument "Budget.record: crash of p1 exceeds budget") (fun () ->
      ignore (Budget.record c (Sched.crash 1)))

(* --------------- properties --------------- *)

let arbitrary_schedule =
  let event =
    QCheck.Gen.(
      map2
        (fun crash p -> if crash && p > 0 then Sched.crash p else Sched.step p)
        (frequency [ (3, return false); (1, return true) ])
        (int_bound 2))
  in
  QCheck.make
    ~print:(fun s -> Sched.to_string s)
    QCheck.Gen.(list_size (int_bound 12) event)

let prop_star_subset_of_ez =
  QCheck.Test.make ~name:"E_z^* is a subset of E_z" ~count:500 arbitrary_schedule (fun s ->
      (not (Budget.within_e_z_star ~z:1 ~nprocs:3 s)) || Budget.within_e_z ~z:1 ~nprocs:3 s)

let prop_star_prefix_closed =
  QCheck.Test.make ~name:"E_z^* is prefix closed" ~count:500 arbitrary_schedule (fun s ->
      (not (Budget.within_e_z_star ~z:1 ~nprocs:3 s))
      ||
      let rec prefixes acc = function
        | [] -> [ List.rev acc ]
        | e :: rest -> List.rev acc :: prefixes (e :: acc) rest
      in
      List.for_all (Budget.within_e_z_star ~z:1 ~nprocs:3) (prefixes [] s))

let prop_monotone_in_z =
  QCheck.Test.make ~name:"budgets are monotone in z" ~count:500 arbitrary_schedule (fun s ->
      (not (Budget.within_e_z_star ~z:1 ~nprocs:3 s))
      || Budget.within_e_z_star ~z:2 ~nprocs:3 s)

let prop_crash_free_always_within =
  QCheck.Test.make ~name:"crash-free schedules are always within budget (Obs. 4)" ~count:200
    arbitrary_schedule (fun s ->
      let steps = List.filter (function Sched.Step _ -> true | _ -> false) s in
      Budget.within_e_z_star ~z:1 ~nprocs:3 steps)

let suite =
  [
    Alcotest.test_case "the paper's E_1 vs E_1^* example" `Quick test_paper_example;
    Alcotest.test_case "p0 never crashes" `Quick test_p0_never_crashes;
    Alcotest.test_case "budget scales with lower-id steps" `Quick test_budget_scales_with_lower_steps;
    Alcotest.test_case "only lower identifiers fund crashes" `Quick test_only_lower_ids_count;
    Alcotest.test_case "incremental counter agrees with predicate" `Quick test_counter_matches_predicate;
    Alcotest.test_case "crash headroom accounting" `Quick test_headroom;
    Alcotest.test_case "record rejects over-budget crashes" `Quick test_record_rejects_over_budget;
    QCheck_alcotest.to_alcotest prop_star_subset_of_ez;
    QCheck_alcotest.to_alcotest prop_star_prefix_closed;
    QCheck_alcotest.to_alcotest prop_monotone_in_z;
    QCheck_alcotest.to_alcotest prop_crash_free_always_within;
  ]
