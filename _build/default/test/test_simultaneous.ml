(* Tests for the simultaneous-crash model (paper introduction): compare
   protocol behaviour across the two crash models. *)

let check_bool = Alcotest.(check bool)

let binary_inputs n = List.init (1 lsl n) (fun mask -> Array.init n (fun i -> (mask lsr i) land 1))

let test_crash_all_semantics () =
  let p = Classic.cas_consensus ~nprocs:2 in
  let c = Config.initial p ~inputs:[| 0; 1 |] in
  let c1 = Exec.run_procs p c [ 0 ] in
  let c2, trace = Exec.run_schedule p c1 [ Sched.crash_all ] in
  check_bool "trace records it" true (trace = [ Exec.Crashed_all ]);
  check_bool "all locals reset" true (c2.Config.locals = c.Config.locals);
  check_bool "objects survive" true (c2.Config.values = c1.Config.values)

let test_crash_all_outside_e_z () =
  let sched = Sched.[ step 0; crash_all ] in
  check_bool "not in E_z" false (Budget.within_e_z ~z:3 ~nprocs:2 sched);
  check_bool "not in E_z^*" false (Budget.within_e_z_star ~z:3 ~nprocs:2 sched);
  Alcotest.check_raises "record rejects"
    (Invalid_argument "Budget.record: simultaneous crashes lie outside E_z") (fun () ->
      ignore (Budget.record (Budget.counter ~z:1 ~nprocs:2) Sched.crash_all))

let test_explorer_ignores_crash_all () =
  let p = Classic.cas_consensus ~nprocs:2 in
  let ctx = Explore.create ~z:1 p in
  let root = Explore.root ctx ~inputs:[| 0; 1 |] in
  check_bool "no crash-all child" true (Explore.child ctx root Sched.crash_all = None)

let test_cas_survives_simultaneous () =
  let p = Classic.cas_consensus ~nprocs:2 in
  match Simultaneous.certify ~max_crashes:2 ~inputs_list:(binary_inputs 2) p with
  | Ok (), truncated -> check_bool "exhaustive" false truncated
  | Error r, _ -> Alcotest.failf "cas violated: %s" (Sched.to_string r.Simultaneous.schedule)

let test_sticky_survives_simultaneous () =
  let p = Classic.sticky_consensus ~nprocs:3 in
  match Simultaneous.certify ~max_crashes:2 ~inputs_list:(binary_inputs 3) p with
  | Ok (), truncated -> check_bool "exhaustive" false truncated
  | Error r, _ -> Alcotest.failf "sticky violated: %s" (Sched.to_string r.Simultaneous.schedule)

let test_tnn_recoverable_survives_simultaneous () =
  (* The paper's n'-process algorithm applies at most n' RMW operations in
     total no matter how often processes restart, so it is also correct
     under simultaneous crashes. *)
  let p = Tnn_protocol.recoverable ~n:4 ~n':2 in
  match Simultaneous.certify ~max_crashes:2 ~inputs_list:(binary_inputs 2) p with
  | Ok (), truncated -> check_bool "exhaustive" false truncated
  | Error r, _ -> Alcotest.failf "tnn violated: %s" (Sched.to_string r.Simultaneous.schedule)

let test_classical_tas_breaks_in_both_models () =
  (* cn = rcn under simultaneous crashes is a statement about *some*
     algorithm; the classical TAS protocol is not that algorithm — after a
     simultaneous crash both processes lose the TAS and adopt each other's
     announcements. *)
  let p = Classic.tas_consensus_2 in
  match Simultaneous.search ~max_crashes:1 ~inputs_list:(binary_inputs 2) p with
  | Some r ->
      check_bool "involves the global crash" true
        (List.mem Sched.crash_all r.Simultaneous.schedule)
  | None -> Alcotest.fail "classical TAS should also break under simultaneous crashes"

let test_tnn_overloaded_breaks_in_both_models () =
  let p = Tnn_protocol.recoverable_overloaded ~procs:3 ~n:4 ~n':2 in
  check_bool "breaks under simultaneous crashes too" true
    (Simultaneous.search ~max_crashes:1 ~inputs_list:(binary_inputs 3) p <> None)

let test_zero_crashes_is_crash_free () =
  (* With max_crashes = 0 the checker reduces to crash-free exploration:
     the register race still fails, TAS does not. *)
  check_bool "race fails crash-free" true
    (Simultaneous.search ~max_crashes:0 ~inputs_list:(binary_inputs 2)
       (Classic.register_race ~nprocs:2)
    <> None);
  check_bool "tas fine crash-free" true
    (fst (Simultaneous.certify ~max_crashes:0 ~inputs_list:(binary_inputs 2) Classic.tas_consensus_2)
    = Ok ())

let test_simultaneous_adversary () =
  let p = Classic.cas_consensus ~nprocs:3 in
  for seed = 1 to 30 do
    let adv = Adversary.random_simultaneous ~crash_prob:0.3 ~max_crashes:3 ~seed ~nprocs:3 in
    let c0 = Config.initial p ~inputs:[| 1; 0; 1 |] in
    let final, sched, out =
      Exec.run_adversary p c0
        ~pick:(fun ~decided b -> adv ~decided b)
        ~budget:(Budget.counter ~z:1 ~nprocs:3)
        ~fuel:200 ()
    in
    check_bool "no individual crashes" true
      (List.for_all (function Sched.Crash _ -> false | _ -> true) sched);
    check_bool "completes" true out.Exec.all_decided;
    check_bool "consensus" true (Checker.is_ok (Checker.consensus p final))
  done

let suite =
  [
    Alcotest.test_case "crash-all resets everyone, keeps objects" `Quick test_crash_all_semantics;
    Alcotest.test_case "crash-all lies outside E_z" `Quick test_crash_all_outside_e_z;
    Alcotest.test_case "the E_z^* explorer never injects crash-all" `Quick test_explorer_ignores_crash_all;
    Alcotest.test_case "CAS survives simultaneous crashes" `Quick test_cas_survives_simultaneous;
    Alcotest.test_case "sticky survives simultaneous crashes" `Slow test_sticky_survives_simultaneous;
    Alcotest.test_case "T recoverable survives simultaneous crashes" `Quick test_tnn_recoverable_survives_simultaneous;
    Alcotest.test_case "classical TAS breaks in both models" `Quick test_classical_tas_breaks_in_both_models;
    Alcotest.test_case "overloaded T breaks in both models" `Slow test_tnn_overloaded_breaks_in_both_models;
    Alcotest.test_case "zero crashes degenerates to crash-free" `Quick test_zero_crashes_is_crash_free;
    Alcotest.test_case "simultaneous adversary" `Quick test_simultaneous_adversary;
  ]
