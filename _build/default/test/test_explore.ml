(* Tests for the valency engine and counterexample search — the paper's
   Section 3 machinery exercised on concrete protocols. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let binary_inputs n = List.init (1 lsl n) (fun mask -> Array.init n (fun i -> (mask lsr i) land 1))

let valency_t =
  Alcotest.testable
    (fun ppf -> function
      | Explore.Bivalent -> Format.pp_print_string ppf "bivalent"
      | Explore.Univalent v -> Format.fprintf ppf "%d-univalent" v
      | Explore.Unknown -> Format.pp_print_string ppf "unknown")
    ( = )

let test_observation_1_bivalent_root () =
  (* Observation 1: mixed-input initial configurations are bivalent. *)
  let p = Classic.cas_consensus ~nprocs:2 in
  let ctx = Explore.create ~z:1 p in
  Alcotest.check valency_t "mixed inputs bivalent" Explore.Bivalent
    (Explore.valency ctx (Explore.root ctx ~inputs:[| 0; 1 |]));
  (* Validity: all-same-input configurations are univalent. *)
  Alcotest.check valency_t "all-zero univalent" (Explore.Univalent 0)
    (Explore.valency ctx (Explore.root ctx ~inputs:[| 0; 0 |]));
  Alcotest.check valency_t "all-one univalent" (Explore.Univalent 1)
    (Explore.valency ctx (Explore.root ctx ~inputs:[| 1; 1 |]))

let test_children_respect_budget () =
  let p = Classic.cas_consensus ~nprocs:2 in
  let ctx = Explore.create ~z:1 p in
  let root = Explore.root ctx ~inputs:[| 0; 1 |] in
  let events = List.map fst (Explore.children ctx root) in
  (* Initially: steps for both processes, no crashes (budget zero). *)
  check_bool "no initial crashes" true
    (List.for_all (function Sched.Step _ -> true | Sched.Crash _ | Sched.Crash_all -> false) events);
  check_int "two steps" 2 (List.length events);
  let after_p0 = Option.get (Explore.child ctx root (Sched.step 0)) in
  let events = List.map fst (Explore.children ctx after_p0) in
  check_bool "now p1 may crash" true (List.mem (Sched.crash 1) events);
  check_bool "p0 never crashes" false (List.mem (Sched.crash 0) events)

let test_child_rejects_over_budget_crash () =
  let p = Classic.cas_consensus ~nprocs:2 in
  let ctx = Explore.create ~z:1 p in
  let root = Explore.root ctx ~inputs:[| 0; 1 |] in
  check_bool "crash rejected at root" true (Explore.child ctx root (Sched.crash 1) = None)

let test_outputs_sticky_across_crashes () =
  (* A decided process that crashes is reset, but its decision remains part
     of the execution history. *)
  let p = Classic.cas_consensus ~nprocs:2 in
  let ctx = Explore.create ~z:1 p in
  let root = Explore.root ctx ~inputs:[| 0; 1 |] in
  let node = Option.get (Explore.child ctx root (Sched.step 0)) in
  let node = Option.get (Explore.child ctx node (Sched.step 0)) in
  check_bool "p0 decided" true (node.Explore.outputs.(0) = Some 0);
  (* budget: one step by p0 funds crashes of p1 but not p0; step p1 twice to
     fund nothing more — crash p1, then check p1's output history. *)
  let node = Option.get (Explore.child ctx node (Sched.step 1)) in
  let node = Option.get (Explore.child ctx node (Sched.step 1)) in
  check_bool "p1 decided 0 too" true (node.Explore.outputs.(1) = Some 0);
  let node = Option.get (Explore.child ctx node (Sched.crash 1)) in
  check_bool "history survives crash" true (node.Explore.outputs.(1) = Some 0);
  check_bool "but state is reset" true (Config.decided p node.Explore.config ~proc:1 = None)

let test_schedule_to () =
  let p = Classic.cas_consensus ~nprocs:2 in
  let ctx = Explore.create ~z:1 p in
  let root = Explore.root ctx ~inputs:[| 0; 1 |] in
  let node = Option.get (Explore.child ctx root (Sched.step 1)) in
  let node = Option.get (Explore.child ctx node (Sched.step 0)) in
  Alcotest.(check string) "path recorded" "p1 p0" (Sched.to_string (Explore.schedule_to node))

let test_critical_execution_lemmas () =
  (* Find a critical execution for the sticky-bit protocol and verify the
     paper's structural lemmas on it. *)
  let p = Classic.sticky_consensus ~nprocs:2 in
  let ctx = Explore.create ~z:1 p in
  let root = Explore.root ctx ~inputs:[| 0; 1 |] in
  match Explore.find_critical ctx root with
  | None -> Alcotest.fail "a critical execution must exist (Lemma 6a)"
  | Some crit ->
      (* Lemma 7: both teams nonempty. *)
      let teams = Explore.teams ctx crit in
      let members v = List.filter (fun (_, w) -> w = v) teams in
      check_bool "team 0 nonempty (Lemma 7)" true (members 0 <> []);
      check_bool "team 1 nonempty (Lemma 7)" true (members 1 <> []);
      (* Lemma 8: the critical configuration is itself bivalent. *)
      Alcotest.check valency_t "bivalent at criticality (Lemma 8)" Explore.Bivalent
        (Explore.valency ctx crit);
      (* Lemma 9: all processes poised at the same object. *)
      check_bool "same object (Lemma 9)" true (Explore.poised_object p crit <> None);
      (* Observation 11 trichotomy: sticky bit records the winner. *)
      check_bool "classification defined" true
        (match Explore.classify ctx crit with
        | Explore.N_recording | Explore.Hiding _ -> true
        | Explore.Neither -> false)

let test_critical_on_tnn_recoverable () =
  (* Same structural checks on the paper's own protocol, 2 processes on
     T_{3,1}... T_{4,2} keeps the space small with z = 1. *)
  let p = Tnn_protocol.recoverable ~n:4 ~n':2 in
  let ctx = Explore.create ~z:1 ~max_events:60 p in
  let root = Explore.root ctx ~inputs:[| 1; 0 |] in
  match Explore.find_critical ctx root with
  | None -> Alcotest.fail "critical execution must exist"
  | Some crit ->
      let teams = Explore.teams ctx crit in
      check_bool "both teams present" true
        (List.exists (fun (_, v) -> v = 0) teams && List.exists (fun (_, v) -> v = 1) teams);
      check_bool "same object" true (Explore.poised_object p crit = Some 0)

let test_valency_restricted () =
  let p = Classic.cas_consensus ~nprocs:2 in
  let ctx = Explore.create ~z:1 p in
  let root = Explore.root ctx ~inputs:[| 0; 1 |] in
  (* Restricted to p0 alone, only 0 can be decided. *)
  Alcotest.check valency_t "p0 solo is 0-univalent" (Explore.Univalent 0)
    (Explore.valency_restricted ctx root ~procs:[ 0 ]);
  Alcotest.check valency_t "p1 solo is 1-univalent" (Explore.Univalent 1)
    (Explore.valency_restricted ctx root ~procs:[ 1 ]);
  Alcotest.check valency_t "both is bivalent" Explore.Bivalent
    (Explore.valency_restricted ctx root ~procs:[ 0; 1 ])

let test_truncation_reported () =
  let p = Classic.cas_consensus ~nprocs:2 in
  let ctx = Explore.create ~z:1 ~max_events:0 p in
  let root = Explore.root ctx ~inputs:[| 0; 1 |] in
  let decisions, truncated = Explore.reachable_decisions ctx root in
  check_bool "truncated at depth 0" true truncated;
  check_int "nothing decided yet" 0 (List.length decisions);
  Alcotest.check valency_t "unknown" Explore.Unknown (Explore.valency ctx root)

let test_count_nodes () =
  let p = Classic.cas_consensus ~nprocs:2 in
  let ctx = Explore.create ~z:1 p in
  let root = Explore.root ctx ~inputs:[| 0; 1 |] in
  let n, truncated = Explore.count_nodes ctx root ~max_nodes:100_000 in
  check_bool "finite space" false truncated;
  check_bool "nontrivial" true (n > 4)

let test_theorem13_chain () =
  (* The chain construction of Theorem 13 (Figures 1-2): on correct
     protocols the walk must terminate at an n-recording configuration. *)
  let expect name outcome =
    match outcome with
    | _, Explore.Reached_recording -> ()
    | _, Explore.Exhausted i -> Alcotest.failf "%s: exhausted after %d rounds" name i
    | _, Explore.Stuck m -> Alcotest.failf "%s: stuck (%s)" name m
  in
  let p = Classic.sticky_consensus ~nprocs:3 in
  let ctx = Explore.create ~z:1 ~max_events:100 p in
  expect "sticky-3" (Explore.theorem13_chain ctx (Explore.root ctx ~inputs:[| 0; 1; 1 |]));
  let p = Classic.cas_consensus ~nprocs:2 in
  let ctx = Explore.create ~z:1 p in
  expect "cas-2" (Explore.theorem13_chain ctx (Explore.root ctx ~inputs:[| 0; 1 |]))

let test_theorem13_chain_tnn_crossing_crashes () =
  (* On the paper's own protocol the critical execution itself contains
     crashes — the phenomenon that makes recoverable valency arguments
     harder (Section 3's motivation). *)
  let p = Tnn_protocol.recoverable ~n:4 ~n':2 in
  let ctx = Explore.create ~z:1 ~max_events:80 p in
  match Explore.theorem13_chain ctx (Explore.root ctx ~inputs:[| 1; 0 |]) with
  | [ step ], Explore.Reached_recording ->
      check_bool "critical execution contains crashes" true
        (List.exists
           (function Sched.Crash _ -> true | Sched.Step _ | Sched.Crash_all -> false)
           step.Explore.schedule);
      check_bool "classified recording" true
        (step.Explore.step_classification = Explore.N_recording)
  | steps, _ -> Alcotest.failf "unexpected chain shape (%d steps)" (List.length steps)

let test_lemma10_on_critical_nodes () =
  (* Lemma 10's conclusion holds at critical executions of correct
     protocols: no cross-team pair of step schedules leaves the common
     object with equal values, except through p_{n-1}'s solo step. *)
  let check_one name program inputs max_events =
    let ctx = Explore.create ~z:1 ~max_events program in
    match Explore.find_critical ctx (Explore.root ctx ~inputs) with
    | None -> Alcotest.failf "%s: no critical execution" name
    | Some crit -> (
        match Explore.lemma10_check ctx crit with
        | None -> ()
        | Some (pi, pj) ->
            Alcotest.failf "%s: Lemma 10 violated by [%s] vs [%s]" name
              (String.concat " " (List.map string_of_int pi))
              (String.concat " " (List.map string_of_int pj)))
  in
  check_one "sticky-2" (Classic.sticky_consensus ~nprocs:2) [| 0; 1 |] 200;
  check_one "cas-2" (Classic.cas_consensus ~nprocs:2) [| 0; 1 |] 200;
  check_one "tnn(4,2)-2" (Tnn_protocol.recoverable ~n:4 ~n':2) [| 1; 0 |] 80

let test_bivalence_cannot_be_preserved_forever () =
  (* Lemma 6 as a runtime phenomenon: the strongest bivalence-preserving
     adversary gets stuck after finitely many events, and the execution it
     builds is critical (every child univalent). *)
  let p = Classic.cas_consensus ~nprocs:2 in
  let ctx = Explore.create ~z:1 p in
  let root = Explore.root ctx ~inputs:[| 0; 1 |] in
  let sched = Explore.bivalence_preserving_steps ctx root in
  (* replay it and confirm the endpoint is bivalent with univalent kids *)
  let final =
    List.fold_left
      (fun node e -> Option.get (Explore.child ctx node e))
      root sched
  in
  check_bool "endpoint bivalent" true (Explore.valency ctx final = Explore.Bivalent);
  check_bool "all children univalent" true
    (List.for_all
       (fun (_, kid) -> match Explore.valency ctx kid with Explore.Univalent _ -> true | _ -> false)
       (Explore.children ctx final))

(* ------------------------------------------------------------------ *)
(* Counterexample search *)

let test_register_race_violation () =
  match
    Counterexample.search ~z:1 ~inputs_list:(binary_inputs 2) (Classic.register_race ~nprocs:2)
  with
  | Some r ->
      (match r.Counterexample.violation with
      | Counterexample.Disagreement (v, w) -> check_bool "distinct" true (v <> w)
      | Counterexample.Invalid _ -> Alcotest.fail "expected a disagreement");
      (* The inputs must be mixed. *)
      check_bool "mixed inputs" true
        (Array.exists (( = ) 0) r.Counterexample.inputs
        && Array.exists (( = ) 1) r.Counterexample.inputs)
  | None -> Alcotest.fail "register race must violate agreement"

let test_tas_crash_violation () =
  (* Golab's theorem in execution form. *)
  match Counterexample.search ~z:1 ~inputs_list:(binary_inputs 2) Classic.tas_consensus_2 with
  | Some r ->
      check_bool "schedule contains a crash" true
        (List.exists (function Sched.Crash _ -> true | Sched.Step _ | Sched.Crash_all -> false)
           r.Counterexample.schedule)
  | None -> Alcotest.fail "TAS with crashes must violate agreement (Golab)"

let test_tas_crash_free_correct () =
  (* The same protocol is exhaustively correct without crashes. *)
  let p = Classic.tas_consensus_2 in
  let ok = ref true in
  List.iter
    (fun inputs ->
      List.iter
        (fun sched ->
          let c0 = Config.initial p ~inputs in
          let final, _ = Exec.run_schedule p c0 sched in
          if not (Checker.is_ok (Checker.consensus p final)) then ok := false)
        (Sched.interleavings ~nprocs:2 ~steps_per_proc:4))
    (binary_inputs 2);
  check_bool "crash-free TAS consensus correct" true !ok

let test_certify_cas () =
  match Counterexample.certify ~z:1 ~inputs_list:(binary_inputs 2) (Classic.cas_consensus ~nprocs:2) with
  | Ok (), truncated ->
      check_bool "exhaustive" false truncated
  | Error _, _ -> Alcotest.fail "CAS consensus is recoverable"

let test_tnn_overload_breaks () =
  (* E4: the paper's upper-bound argument in executable form. *)
  let p = Tnn_protocol.recoverable_overloaded ~procs:3 ~n:4 ~n':2 in
  match Counterexample.search ~z:1 ~inputs_list:(binary_inputs 3) p with
  | Some r ->
      check_bool "uses a crash" true
        (List.exists (function Sched.Crash _ -> true | Sched.Step _ | Sched.Crash_all -> false)
           r.Counterexample.schedule)
  | None -> Alcotest.fail "n'+1 processes on T_{n,n'} must fail"

let suite =
  [
    Alcotest.test_case "Observation 1: mixed roots are bivalent" `Quick test_observation_1_bivalent_root;
    Alcotest.test_case "children respect the crash budget" `Quick test_children_respect_budget;
    Alcotest.test_case "budget-violating crashes rejected" `Quick test_child_rejects_over_budget_crash;
    Alcotest.test_case "outputs are sticky across crashes" `Quick test_outputs_sticky_across_crashes;
    Alcotest.test_case "paths recorded" `Quick test_schedule_to;
    Alcotest.test_case "critical executions satisfy Lemmas 7-9" `Quick test_critical_execution_lemmas;
    Alcotest.test_case "critical execution on the paper's protocol" `Slow test_critical_on_tnn_recoverable;
    Alcotest.test_case "restricted valency" `Quick test_valency_restricted;
    Alcotest.test_case "truncation is reported, never guessed" `Quick test_truncation_reported;
    Alcotest.test_case "node counting" `Quick test_count_nodes;
    Alcotest.test_case "Lemma 10 holds at critical executions" `Quick test_lemma10_on_critical_nodes;
    Alcotest.test_case "Lemma 6: bivalence preservation gets stuck" `Quick test_bivalence_cannot_be_preserved_forever;
    Alcotest.test_case "Theorem 13 chain reaches recording" `Quick test_theorem13_chain;
    Alcotest.test_case "Theorem 13 chain on T_{4,2}: crashes before criticality" `Slow test_theorem13_chain_tnn_crossing_crashes;
    Alcotest.test_case "register race violates agreement (FLP)" `Quick test_register_race_violation;
    Alcotest.test_case "TAS breaks under crashes (Golab)" `Quick test_tas_crash_violation;
    Alcotest.test_case "TAS correct crash-free" `Quick test_tas_crash_free_correct;
    Alcotest.test_case "CAS consensus certified recoverable" `Quick test_certify_cas;
    Alcotest.test_case "overloaded T_{n,n'} protocol breaks (E4)" `Slow test_tnn_overload_breaks;
  ]
