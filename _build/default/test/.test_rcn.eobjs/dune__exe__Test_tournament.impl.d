test/test_tournament.ml: Adversary Alcotest Array Budget Checker Config Counterexample Exec Format Gallery Hashtbl List Printf QCheck QCheck_alcotest Sched Simultaneous String Tournament
