test/test_budget.ml: Alcotest Budget List Printf QCheck QCheck_alcotest Sched
