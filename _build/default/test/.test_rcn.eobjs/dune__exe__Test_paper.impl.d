test/test_paper.ml: Alcotest Array Certificate Checker Classic Config Counterexample Decide Election Exec Explore Gallery List Numbers Objtype Option Robustness Sched Tnn_protocol
