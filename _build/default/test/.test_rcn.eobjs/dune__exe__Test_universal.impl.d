test/test_universal.ml: Adversary Alcotest Array Budget Config Exec Gallery List Printf Program QCheck QCheck_alcotest Sched String Universal
