test/test_objtype.ml: Alcotest Format Gallery List Objtype Option QCheck QCheck_alcotest Random Synth
