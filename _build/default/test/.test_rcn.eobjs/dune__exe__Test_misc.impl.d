test/test_misc.ml: Adversary Alcotest Budget Census Certificate Classic Config Counterexample Dot Exec Explore Format Gallery Numbers Objtype Program Sched Simultaneous String Synth Tnn_protocol
