test/test_sched.ml: Alcotest List Printf QCheck QCheck_alcotest Result Sched
