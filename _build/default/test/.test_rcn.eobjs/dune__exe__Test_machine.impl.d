test/test_machine.ml: Adversary Alcotest Array Budget Checker Classic Config Exec Gallery Objtype Printf Program Sched
