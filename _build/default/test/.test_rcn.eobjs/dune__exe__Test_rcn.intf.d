test/test_rcn.mli:
