test/test_simultaneous.ml: Adversary Alcotest Array Budget Checker Classic Config Exec Explore List Sched Simultaneous Tnn_protocol
