test/test_explore.ml: Alcotest Array Checker Classic Config Counterexample Exec Explore Format List Option Sched String Tnn_protocol
