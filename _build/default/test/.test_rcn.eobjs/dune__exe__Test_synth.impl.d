test/test_synth.ml: Alcotest Array Gallery Objtype Printf Random Synth
