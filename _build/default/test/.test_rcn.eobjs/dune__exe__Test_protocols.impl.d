test/test_protocols.ml: Adversary Alcotest Array Budget Certificate Checker Classic Config Counterexample Decide Election Exec Gallery List Option Printf Program Sched Tnn_protocol
