test/test_gallery.ml: Alcotest Dot Gallery List Objtype String
