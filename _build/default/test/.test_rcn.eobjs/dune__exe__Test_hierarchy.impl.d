test/test_hierarchy.ml: Alcotest Census Certificate Decide Format Gallery List Numbers Objtype Option Printf QCheck QCheck_alcotest Random Robustness Seq Synth
