(* Tests for the executable protocols: the paper's Section 4 algorithms and
   the certificate-driven elections. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let binary_inputs n = List.init (1 lsl n) (fun mask -> Array.init n (fun i -> (mask lsr i) land 1))

let exhaustive_crash_free p ~steps_per_proc =
  let n = p.Program.nprocs in
  let violations = ref [] in
  List.iter
    (fun inputs ->
      List.iter
        (fun sched ->
          let c0 = Config.initial p ~inputs in
          let final, _ = Exec.run_schedule p c0 sched in
          (match Checker.consensus p final with
          | Checker.Ok -> ()
          | Checker.Violation m -> violations := m :: !violations);
          match Checker.all_decided p final with
          | Checker.Ok -> ()
          | Checker.Violation m -> violations := m :: !violations)
        (Sched.interleavings ~nprocs:n ~steps_per_proc))
    (binary_inputs n);
  !violations

(* ------------------------------------------------------------------ *)
(* T_{n,n'} wait-free (Lemma 15 lower bound) *)

let test_tnn_wait_free_exhaustive () =
  List.iter
    (fun (n, n') ->
      let p = Tnn_protocol.wait_free ~n ~n' in
      Alcotest.(check (list string))
        (Printf.sprintf "T_{%d,%d} wait-free clean" n n')
        []
        (exhaustive_crash_free p ~steps_per_proc:1))
    [ (2, 1); (3, 1); (4, 2) ]

let test_tnn_wait_free_first_op_decides () =
  let p = Tnn_protocol.wait_free ~n:4 ~n':2 in
  let c0 = Config.initial p ~inputs:[| 1; 0; 0; 1 |] in
  let final = Exec.run_procs p c0 [ 2; 0; 1; 3 ] in
  (* p2 moved first with input 0: everyone decides 0. *)
  Array.iter
    (fun d -> check_bool "all decide first input" true (d = Some 0))
    (Config.decisions p final)

let test_tnn_wait_free_not_recoverable () =
  (* The wait-free algorithm re-applies op_x after a crash; enough crashes
     push the object to bot and break agreement. *)
  let p = Tnn_protocol.wait_free ~n:3 ~n':1 in
  match Counterexample.search ~z:1 ~inputs_list:(binary_inputs 3) p with
  | Some _ -> ()
  | None -> Alcotest.fail "wait-free T protocol must fail under crashes"

let test_tnn_input_validation () =
  let p = Tnn_protocol.wait_free ~n:3 ~n':1 in
  check_bool "non-binary input rejected" true
    (try
       ignore (Config.initial p ~inputs:[| 0; 2; 1 |]);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* T_{n,n'} recoverable (Lemma 16 lower bound) *)

let test_tnn_recoverable_certified () =
  List.iter
    (fun (n, n') ->
      let p = Tnn_protocol.recoverable ~n ~n' in
      match Counterexample.certify ~z:1 ~inputs_list:(binary_inputs n') p with
      | Ok (), truncated ->
          check_bool (Printf.sprintf "T_{%d,%d} exhaustive" n n') false truncated
      | Error r, _ ->
          Alcotest.failf "T_{%d,%d} recoverable violated: %s" n n'
            (Sched.to_string r.Counterexample.schedule))
    [ (2, 1); (3, 1); (4, 2); (3, 2) ]

let test_tnn_recoverable_random_storms () =
  let p = Tnn_protocol.recoverable ~n:5 ~n':2 in
  for seed = 1 to 50 do
    List.iter
      (fun inputs ->
        let adv = Adversary.crash_storm ~period:2 ~seed ~nprocs:2 in
        let c0 = Config.initial p ~inputs in
        let final, _, out =
          Exec.run_adversary p c0
            ~pick:(fun ~decided b -> adv ~decided b)
            ~budget:(Budget.counter ~z:2 ~nprocs:2)
            ~rwf_bound:2 ~fuel:300 ()
        in
        check_bool "completes" true out.Exec.all_decided;
        check_bool "no rwf violation" true (out.Exec.rwf_violation = None);
        check_bool "consensus" true (Checker.is_ok (Checker.consensus p final)))
      (binary_inputs 2)
  done

let test_tnn_recoverable_steps_bound () =
  (* Recoverable wait-freedom: at most 2 operations from any reset
     (paper: "each process applies at most 2 operations to O"). *)
  let p = Tnn_protocol.recoverable ~n:4 ~n':2 in
  let c0 = Config.initial p ~inputs:[| 1; 0 |] in
  let _, steps = Exec.solo_terminate p c0 ~proc:0 in
  check_bool "at most 2 steps solo" true (steps <= 2)

(* ------------------------------------------------------------------ *)
(* Certificate-driven election and consensus *)

let ladder2_cert () =
  Option.get (Decide.search Decide.Recording (Gallery.team_ladder ~cap:2) ~n:2)

let x4_cert () = Option.get (Decide.search Decide.Recording Gallery.x4_witness ~n:2)

let test_election_outputs_first_team () =
  let cert = ladder2_cert () in
  let p = Election.team_election cert in
  (* Run under many random crashy adversaries; whenever everyone decides,
     all outputs must equal the team of the first process that applied its
     certificate operation. *)
  for seed = 1 to 100 do
    let adv = Adversary.random ~crash_prob:0.3 ~seed ~nprocs:2 in
    let c0 = Config.initial p ~inputs:[| 0; 0 |] in
    let final, sched, out =
      Exec.run_adversary p c0
        ~pick:(fun ~decided b -> adv ~decided b)
        ~budget:(Budget.counter ~z:1 ~nprocs:2)
        ~fuel:300 ()
    in
    if out.Exec.all_decided then begin
      let _, trace = Exec.run_schedule p (Config.initial p ~inputs:[| 0; 0 |]) sched in
      match Election.expected_winner cert sched trace with
      | Some team ->
          check_bool
            (Printf.sprintf "all output winning team (seed %d)" seed)
            true
            (Checker.is_ok (Checker.election ~winner_team:team p final))
      | None -> Alcotest.fail "decided without anyone applying?"
    end
  done

let test_election_certified_exhaustively () =
  (* Stronger: model-check that the two processes always agree on the team.
     Inputs are ignored by the election; mixed inputs keep the certifier's
     validity check vacuous so only (team) agreement is checked. *)
  let cert = ladder2_cert () in
  let p = Election.team_election cert in
  match Counterexample.certify ~z:1 ~inputs_list:[ [| 0; 1 |] ] p with
  | Ok (), truncated -> check_bool "exhaustive" false truncated
  | Error r, _ ->
      Alcotest.failf "election disagreement: %s" (Sched.to_string r.Counterexample.schedule)

let test_consensus2_from_ladder () =
  let p = Election.consensus_2 (ladder2_cert ()) in
  match Counterexample.certify ~z:1 ~inputs_list:(binary_inputs 2) p with
  | Ok (), truncated -> check_bool "exhaustive" false truncated
  | Error r, _ ->
      Alcotest.failf "consensus2 violated: %s" (Sched.to_string r.Counterexample.schedule)

let test_consensus2_from_x4_witness () =
  (* The paper's chain made executable: the x4 witness is 2-recording, so
     it solves 2-process recoverable consensus — certified exhaustively. *)
  let p = Election.consensus_2 (x4_cert ()) in
  match Counterexample.certify ~z:1 ~inputs_list:(binary_inputs 2) p with
  | Ok (), truncated -> check_bool "exhaustive" false truncated
  | Error r, _ ->
      Alcotest.failf "x4 consensus2 violated: %s" (Sched.to_string r.Counterexample.schedule)

let test_election_rejects_bad_certificates () =
  (* Not recording at all: TAS with tas/tas ops. *)
  let bad =
    Certificate.make ~objtype:Gallery.test_and_set ~initial:0 ~team:[| false; true |]
      ~ops:[| 0; 0 |]
  in
  check_bool "non-recording rejected" true
    (try
       ignore (Election.team_election bad);
       false
     with Invalid_argument _ -> true);
  (* Readability required: T_{n,n'} certificates are rejected. *)
  match Decide.search Decide.Recording (Gallery.tnn ~n:3 ~n':1) ~n:2 with
  | None -> Alcotest.fail "T_{3,1} should be 2-recording"
  | Some cert ->
      check_bool "non-readable rejected" true
        (try
           ignore (Election.team_election cert);
           false
         with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Discerning (crash-free) elections: Ruppert's direction *)

let tas_cert () =
  Certificate.make ~objtype:Gallery.test_and_set ~initial:0 ~team:[| false; true |]
    ~ops:[| 0; 0 |]

let test_discerning_election_4proc () =
  (* 4-process wait-free team election from the x4 witness's 4-discerning
     certificate: exhaustively over all crash-free interleavings (each
     process takes its 2 steps), every process outputs the team of the
     first process to apply its certificate operation. *)
  let cert = Option.get (Decide.search Decide.Discerning Gallery.x4_witness ~n:4) in
  let p = Election.discerning_election cert in
  let scheds = Sched.interleavings ~nprocs:4 ~steps_per_proc:2 in
  List.iter
    (fun sched ->
      let c0 = Config.initial p ~inputs:[| 0; 0; 0; 0 |] in
      let final, trace = Exec.run_schedule p c0 sched in
      check_bool "all decided" true (Config.all_decided p final);
      match Election.expected_winner cert sched trace with
      | Some team ->
          check_bool "outputs = first applier's team" true
            (Checker.is_ok (Checker.election ~winner_team:team p final))
      | None -> Alcotest.fail "nobody applied?")
    scheds

let test_discerning_consensus2_tas_is_classic () =
  (* From the classical TAS certificate, the generic construction is
     exhaustively correct crash-free — it is the textbook algorithm. *)
  let p = Election.discerning_consensus_2 (tas_cert ()) in
  let ok = ref true in
  List.iter
    (fun inputs ->
      List.iter
        (fun sched ->
          let final, _ = Exec.run_schedule p (Config.initial p ~inputs) sched in
          if
            not
              (Checker.is_ok (Checker.consensus p final)
              && Checker.is_ok (Checker.all_decided p final))
          then ok := false)
        (Sched.interleavings ~nprocs:2 ~steps_per_proc:4))
    (binary_inputs 2);
  check_bool "exhaustively correct crash-free" true !ok

let test_discerning_consensus2_breaks_under_crashes () =
  (* ... and, like every discerning-only construction, it is not
     recoverable: the model checker finds a violating crash schedule
     (Golab's separation through the generic path). *)
  let p = Election.discerning_consensus_2 (tas_cert ()) in
  check_bool "crash violation found" true
    (Counterexample.search ~z:1 ~inputs_list:(binary_inputs 2) p <> None)

let test_discerning_rejects_bad_certificates () =
  (* A non-discerning certificate: both TAS processes reading only. *)
  let bad =
    Certificate.make ~objtype:Gallery.test_and_set ~initial:0 ~team:[| false; true |]
      ~ops:[| 1; 1 |]
  in
  check_bool "rejected" true
    (try
       ignore (Election.discerning_election bad);
       false
     with Invalid_argument _ -> true);
  (* Non-readable types rejected even with valid discerning data. *)
  match Decide.search Decide.Discerning (Gallery.tnn ~n:3 ~n':1) ~n:2 with
  | None -> Alcotest.fail "T_{3,1} should be 2-discerning"
  | Some cert ->
      check_bool "non-readable rejected" true
        (try
           ignore (Election.discerning_election cert);
           false
         with Invalid_argument _ -> true)

let test_classic_protocols_correct_crash_free () =
  List.iter
    (fun (name, violations) ->
      Alcotest.(check (list string)) name [] violations)
    [
      ("cas 3 procs", exhaustive_crash_free (Classic.cas_consensus ~nprocs:3) ~steps_per_proc:1);
      ("sticky 3 procs", exhaustive_crash_free (Classic.sticky_consensus ~nprocs:3) ~steps_per_proc:1);
    ]

let test_sticky_recoverable () =
  match Counterexample.certify ~z:1 ~inputs_list:(binary_inputs 2) (Classic.sticky_consensus ~nprocs:2) with
  | Ok (), _ -> ()
  | Error _, _ -> Alcotest.fail "sticky consensus is recoverable"

let test_validate_programs () =
  List.iter
    (fun name_program ->
      match name_program with
      | p -> Program.validate p)
    [ Classic.register_race ~nprocs:2 ];
  Program.validate Classic.tas_consensus_2;
  Program.validate (Tnn_protocol.wait_free ~n:4 ~n':2);
  check_int "tas2 heap size" 3 (Array.length Classic.tas_consensus_2.Program.heap)

let suite =
  [
    Alcotest.test_case "T wait-free exhaustively correct (E2)" `Slow test_tnn_wait_free_exhaustive;
    Alcotest.test_case "T wait-free: first op decides" `Quick test_tnn_wait_free_first_op_decides;
    Alcotest.test_case "T wait-free is not recoverable" `Quick test_tnn_wait_free_not_recoverable;
    Alcotest.test_case "binary input validation" `Quick test_tnn_input_validation;
    Alcotest.test_case "T recoverable certified (E3)" `Slow test_tnn_recoverable_certified;
    Alcotest.test_case "T recoverable vs crash storms" `Slow test_tnn_recoverable_random_storms;
    Alcotest.test_case "T recoverable solo step bound" `Quick test_tnn_recoverable_steps_bound;
    Alcotest.test_case "election outputs the first team" `Slow test_election_outputs_first_team;
    Alcotest.test_case "election certified exhaustively" `Quick test_election_certified_exhaustively;
    Alcotest.test_case "recoverable consensus from ladder certificate" `Quick test_consensus2_from_ladder;
    Alcotest.test_case "recoverable consensus from the x4 witness" `Quick test_consensus2_from_x4_witness;
    Alcotest.test_case "election rejects unusable certificates" `Quick test_election_rejects_bad_certificates;
    Alcotest.test_case "4-process discerning election (Ruppert)" `Slow test_discerning_election_4proc;
    Alcotest.test_case "discerning consensus2 = classic TAS algorithm" `Quick test_discerning_consensus2_tas_is_classic;
    Alcotest.test_case "discerning consensus2 breaks under crashes" `Quick test_discerning_consensus2_breaks_under_crashes;
    Alcotest.test_case "discerning election certificate validation" `Quick test_discerning_rejects_bad_certificates;
    Alcotest.test_case "classic protocols correct crash-free" `Slow test_classic_protocols_correct_crash_free;
    Alcotest.test_case "sticky consensus recoverable" `Quick test_sticky_recoverable;
    Alcotest.test_case "program validation" `Quick test_validate_programs;
  ]
