(* Tests for the universal construction (experiment E10): linearizability
   and crash recovery by replay. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let run_with p ~adv ~z ~fuel =
  let nprocs = p.Program.nprocs in
  let c0 = Config.initial p ~inputs:(Array.make nprocs 0) in
  Exec.run_adversary p c0
    ~pick:(fun ~decided b -> adv ~decided b)
    ~budget:(Budget.counter ~z ~nprocs)
    ~fuel ()

let queue_workload = [| [ 0; 2; 1 ]; [ 1; 2 ]; [ 2; 2; 0 ] |]

let build_queue () =
  let base = Gallery.bounded_queue () in
  (base, Universal.build ~base ~base_initial:0 queue_workload)

let test_heap_size () =
  let _, p = build_queue () in
  check_int "one consensus object per operation" 8 (Array.length p.Program.heap);
  check_int "three processes" 3 p.Program.nprocs

let test_crash_free_linearizable () =
  let base, p = build_queue () in
  let final, _, out = run_with p ~adv:(Adversary.round_robin ~nprocs:3) ~z:1 ~fuel:500 in
  check_bool "completes" true out.Exec.all_decided;
  let report = Universal.check_linearizable p ~base ~base_initial:0 queue_workload final in
  check_bool "linearizable" true report.Universal.ok;
  check_int "all ops decided" 8 (List.length report.Universal.linearization)

let test_round_robin_order () =
  let base, p = build_queue () in
  let final, _, _ = run_with p ~adv:(Adversary.round_robin ~nprocs:3) ~z:1 ~fuel:500 in
  let report = Universal.check_linearizable p ~base ~base_initial:0 queue_workload final in
  (* Program order within each process must be respected. *)
  let positions =
    List.mapi (fun pos (proc, idx) -> (proc, idx, pos)) report.Universal.linearization
  in
  List.iter
    (fun (proc, idx, pos) ->
      List.iter
        (fun (proc', idx', pos') ->
          if proc = proc' && idx < idx' then
            check_bool "program order" true (pos < pos'))
        positions)
    positions

let test_crashy_runs_linearizable () =
  let base, p = build_queue () in
  for seed = 1 to 150 do
    let final, _, out =
      run_with p ~adv:(Adversary.random ~crash_prob:0.3 ~seed ~nprocs:3) ~z:1 ~fuel:3000
    in
    check_bool (Printf.sprintf "completes (seed %d)" seed) true out.Exec.all_decided;
    let report = Universal.check_linearizable p ~base ~base_initial:0 queue_workload final in
    check_bool (Printf.sprintf "linearizable (seed %d)" seed) true report.Universal.ok
  done

let test_detectability_replay () =
  (* Crash a process right after it wins a round; on recovery it must
     re-discover the win (not apply the operation twice). *)
  let base = Gallery.fetch_and_add 8 in
  let workload = [| [ 1 ]; [ 1 ] |] in
  let p = Universal.build ~base ~base_initial:0 workload in
  let c0 = Config.initial p ~inputs:[| 0; 0 |] in
  (* p0 wins round 0, p1 steps (funding the crash), p0 crashes, then both
     run to completion. *)
  let sched = Sched.[ step 0; step 1; crash 1; step 1; step 1; step 1 ] in
  let final, _ = Exec.run_schedule p c0 sched in
  let final = Exec.run_procs p final [ 0; 0; 0; 1; 1; 1 ] in
  check_bool "all decided" true (Config.all_decided p final);
  let report = Universal.check_linearizable p ~base ~base_initial:0 workload final in
  check_bool "linearizable" true report.Universal.ok;
  check_int "exactly two increments decided" 2 (List.length report.Universal.linearization)

let test_empty_workloads () =
  let base = Gallery.register 2 in
  let p = Universal.build ~base ~base_initial:0 [| []; [ 1 ] |] in
  let c0 = Config.initial p ~inputs:[| 0; 0 |] in
  check_bool "empty workload decides immediately" true (Config.decided p c0 ~proc:0 <> None);
  let final = Exec.run_procs p c0 [ 1 ] in
  check_bool "other proceeds" true (Config.all_decided p final)

let test_workload_validation () =
  let base = Gallery.register 2 in
  check_bool "bad op rejected" true
    (try
       ignore (Universal.build ~base ~base_initial:0 [| [ 99 ] |]);
       false
     with Invalid_argument _ -> true);
  check_bool "bad initial rejected" true
    (try
       ignore (Universal.build ~base ~base_initial:9 [| [ 0 ] |]);
       false
     with Invalid_argument _ -> true);
  check_bool "empty rejected" true
    (try
       ignore (Universal.build ~base ~base_initial:0 [||]);
       false
     with Invalid_argument _ -> true)

let test_responses_accessor () =
  check_bool "running has no responses" true
    (Universal.responses () (Universal.Running { round = 0; op_idx = 0; replica = 0; acc_rev = [] })
    = None);
  check_bool "finished returns them" true
    (Universal.responses () (Universal.Finished [ 1; 2 ]) = Some [ 1; 2 ])

(* Property: for random small workloads over a register, crash-free
   round-robin executions produce linearizable outcomes. *)
let prop_random_workloads =
  let gen =
    QCheck.Gen.(
      array_size (return 2) (list_size (int_bound 3) (int_bound 2)))
  in
  QCheck.Test.make ~name:"random register workloads linearize" ~count:60
    (QCheck.make
       ~print:(fun w ->
         String.concat " | "
           (Array.to_list (Array.map (fun l -> String.concat "," (List.map string_of_int l)) w)))
       gen)
    (fun workload ->
      let base = Gallery.register 2 in
      let p = Universal.build ~base ~base_initial:0 workload in
      let nprocs = Array.length workload in
      let c0 = Config.initial p ~inputs:(Array.make nprocs 0) in
      let adv = Adversary.round_robin ~nprocs in
      let final, _, out =
        Exec.run_adversary p c0
          ~pick:(fun ~decided b -> adv ~decided b)
          ~budget:(Budget.counter ~z:1 ~nprocs)
          ~fuel:500 ()
      in
      out.Exec.all_decided
      && (Universal.check_linearizable p ~base ~base_initial:0 workload final).Universal.ok)

let prop_random_workloads_with_crashes =
  let gen = QCheck.Gen.(pair (array_size (return 2) (list_size (int_bound 3) (int_bound 2))) (int_bound 1000)) in
  QCheck.Test.make ~name:"random crashy workloads linearize" ~count:60
    (QCheck.make
       ~print:(fun (w, seed) ->
         Printf.sprintf "seed %d: %s" seed
           (String.concat " | "
              (Array.to_list (Array.map (fun l -> String.concat "," (List.map string_of_int l)) w))))
       gen)
    (fun (workload, seed) ->
      let base = Gallery.register 2 in
      let p = Universal.build ~base ~base_initial:0 workload in
      let nprocs = Array.length workload in
      let c0 = Config.initial p ~inputs:(Array.make nprocs 0) in
      let adv = Adversary.random ~crash_prob:0.25 ~seed ~nprocs in
      let final, _, out =
        Exec.run_adversary p c0
          ~pick:(fun ~decided b -> adv ~decided b)
          ~budget:(Budget.counter ~z:1 ~nprocs)
          ~fuel:2000 ()
      in
      out.Exec.all_decided
      && (Universal.check_linearizable p ~base ~base_initial:0 workload final).Universal.ok)

(* ---------------- helping variant ---------------- *)

let test_helping_crash_free () =
  let base, _ = build_queue () in
  let p = Universal.build_helping ~base ~base_initial:0 queue_workload in
  let final, _, out = run_with p ~adv:(Adversary.round_robin ~nprocs:3) ~z:1 ~fuel:2000 in
  check_bool "completes" true out.Exec.all_decided;
  let report =
    Universal.check_linearizable_helping p ~base ~base_initial:0 queue_workload final
  in
  check_bool "linearizable" true report.Universal.ok;
  check_int "all ops decided" 8 (List.length report.Universal.linearization)

let test_helping_crashy () =
  let base, _ = build_queue () in
  let p = Universal.build_helping ~base ~base_initial:0 queue_workload in
  for seed = 1 to 80 do
    let final, _, out =
      run_with p ~adv:(Adversary.random ~crash_prob:0.25 ~seed ~nprocs:3) ~z:1 ~fuel:5000
    in
    check_bool (Printf.sprintf "completes (seed %d)" seed) true out.Exec.all_decided;
    let report =
      Universal.check_linearizable_helping p ~base ~base_initial:0 queue_workload final
    in
    check_bool (Printf.sprintf "linearizable (seed %d)" seed) true report.Universal.ok
  done

let test_helping_decides_announced_ops () =
  (* The helping guarantee: once the slow process has *announced* (one
     step), the rival's solo run decides the slow process's operation for
     it.  Without helping, no amount of rival work touches it. *)
  let base = Gallery.fetch_and_add 64 in
  let workload = [| List.init 24 (fun _ -> 1); [ 1 ] |] in
  let inputs = [| 0; 0 |] in
  (* Helped: slow announces (1 step), then the rival runs alone. *)
  let helped = Universal.build_helping ~base ~base_initial:0 workload in
  let c0 = Config.initial helped ~inputs in
  let c1 = Exec.apply_step helped c0 ~proc:1 in
  let c2, _ = Exec.solo_terminate helped c1 ~proc:0 in
  let report = Universal.check_linearizable_helping helped ~base ~base_initial:0 workload c2 in
  check_bool "helped: rival decided the announced op" true
    (List.mem (1, 0) report.Universal.linearization);
  check_bool "helped: still linearizable" true report.Universal.ok;
  (* And the slow process then finishes within a handful of its own steps
     (replay up to its early win), far below the rival's 24 rounds. *)
  let _, slow_steps = Exec.solo_terminate helped c2 ~proc:1 in
  check_bool (Printf.sprintf "helped: slow finishes quickly (%d steps)" slow_steps) true
    (slow_steps <= 10);
  (* Plain: the rival's solo run never proposes the slow process's
     descriptor. *)
  let plain = Universal.build ~base ~base_initial:0 workload in
  let c0 = Config.initial plain ~inputs in
  let c1, _ = Exec.solo_terminate plain c0 ~proc:0 in
  let report = Universal.check_linearizable plain ~base ~base_initial:0 workload c1 in
  check_bool "plain: slow op not decided by others" false
    (List.mem (1, 0) report.Universal.linearization);
  (* The slow process must then replay all 24 rival rounds itself. *)
  let _, slow_steps_plain = Exec.solo_terminate plain c1 ~proc:1 in
  check_bool
    (Printf.sprintf "plain: slow pays the rival's rounds (%d steps)" slow_steps_plain)
    true (slow_steps_plain >= 24)

let test_helping_no_duplicates_under_contention () =
  (* Stress: heavy interleavings; the linearization checker rejects
     duplicated descriptors, so passing means helpers never double-apply. *)
  let base = Gallery.register 2 in
  let workload = [| [ 1; 2; 1 ]; [ 2; 1 ]; [ 1; 1; 2 ] |] in
  let p = Universal.build_helping ~base ~base_initial:0 workload in
  for seed = 1 to 60 do
    let final, _, out =
      run_with p ~adv:(Adversary.random ~crash_prob:0.2 ~seed ~nprocs:3) ~z:1 ~fuel:5000
    in
    check_bool "completes" true out.Exec.all_decided;
    let report = Universal.check_linearizable_helping p ~base ~base_initial:0 workload final in
    check_bool (Printf.sprintf "no duplicates/linearizable (seed %d)" seed) true
      report.Universal.ok
  done

let suite =
  [
    Alcotest.test_case "heap sizing" `Quick test_heap_size;
    Alcotest.test_case "crash-free runs linearize" `Quick test_crash_free_linearizable;
    Alcotest.test_case "program order preserved" `Quick test_round_robin_order;
    Alcotest.test_case "crashy runs linearize (E10)" `Slow test_crashy_runs_linearizable;
    Alcotest.test_case "detectability: wins survive crashes" `Quick test_detectability_replay;
    Alcotest.test_case "empty workloads" `Quick test_empty_workloads;
    Alcotest.test_case "workload validation" `Quick test_workload_validation;
    Alcotest.test_case "responses accessor" `Quick test_responses_accessor;
    Alcotest.test_case "helping: crash-free linearizable" `Quick test_helping_crash_free;
    Alcotest.test_case "helping: crashy linearizable" `Slow test_helping_crashy;
    Alcotest.test_case "helping decides announced operations" `Quick test_helping_decides_announced_ops;
    Alcotest.test_case "helping never double-applies" `Slow test_helping_no_duplicates_under_contention;
    QCheck_alcotest.to_alcotest prop_random_workloads;
    QCheck_alcotest.to_alcotest prop_random_workloads_with_crashes;
  ]
