#!/usr/bin/env bash
# serve-smoke: end-to-end exercise of the rcn serve daemon over its real
# Unix socket, using only built binaries (two `dune exec` in one pipeline
# contend for the _build lock — see the Makefile stats-smoke note).
#
# The script asserts the three serve guarantees the test suite pins
# in-process, but through the shipped binaries:
#
#   1. a repeat query is answered from the persistent store
#      (from_store:true, nonzero store.hits in the metrics reply) and is
#      byte-identical to the cold run modulo the from_store flag;
#   2. SIGKILL mid-workload loses nothing that was already persisted: a
#      restarted daemon on the same store serves the same bytes;
#   3. SIGTERM is a clean shutdown: exit 0, socket unlinked, stats
#      printed.
#
# Artifacts land in a scratch directory ($SMOKE_DIR/serve, default
# _build/smoke/serve), removed on success and kept for CI to archive on
# failure — a green run leaves nothing behind.
set -eu

RCN=./_build/default/bin/rcn.exe
CLIENT=./_build/default/tools/serve_client.exe
CHECK=./_build/default/tools/stats_check.exe

OUT="${SMOKE_DIR:-_build/smoke}/serve"
rm -rf "$OUT"
mkdir -p "$OUT"

SOCK=$OUT/serve-smoke.sock
STORE=$OUT/serve-smoke.store

DAEMON_PID=
cleanup() {
  code=$?
  [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
  rm -f "$SOCK"
  if [ "$code" -eq 0 ]; then
    rm -rf "$OUT"
  else
    echo "serve-smoke: artifacts kept in $OUT" >&2
  fi
}
trap cleanup EXIT

fail() { echo "serve-smoke: FAIL: $*" >&2; exit 1; }

wait_for_socket() {
  for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && return 0
    sleep 0.1
  done
  fail "daemon did not create $SOCK"
}

REQ_ANALYZE=$("$RCN" request analyze test-and-set --cap 3 --jobs 2)
REQ_CENSUS=$("$RCN" request census --values 3 --rws 2 --responses 2 --cap 3 --jobs 2)
REQ_METRICS=$("$RCN" request metrics)

# --- phase 1: cold/warm against a fresh daemon --------------------------
"$RCN" serve --socket "$SOCK" --store "$STORE" --jobs 2 --stats json \
  > "$OUT/serve-smoke-daemon1.out" 2>&1 &
DAEMON_PID=$!
wait_for_socket

"$CLIENT" "$SOCK" "$REQ_ANALYZE" > "$OUT/serve-smoke-cold.json"
grep -q '"from_store":false' "$OUT/serve-smoke-cold.json" \
  || fail "cold query claimed from_store"

"$CLIENT" "$SOCK" --repeat 2 "$REQ_ANALYZE" > "$OUT/serve-smoke-warm.json"
[ "$(sort -u "$OUT/serve-smoke-warm.json" | wc -l)" = 1 ] \
  || fail "repeat queries disagreed with each other"
grep -q '"from_store":true' "$OUT/serve-smoke-warm.json" \
  || fail "repeat query was not served from the store"

# Byte-identity cold vs warm: the store replays the exact bytes the cold
# run produced, so the responses differ only in the from_store flag.
if ! diff <(sed 's/"from_store":false/"from_store":true/' "$OUT/serve-smoke-cold.json") \
          <(head -n 1 "$OUT/serve-smoke-warm.json") >/dev/null; then
  fail "store replay is not byte-identical to the cold run"
fi

"$CLIENT" "$SOCK" "$REQ_METRICS" > "$OUT/serve-smoke-metrics.json"
"$CHECK" --require-nonzero store.hits --require-nonzero store.puts \
  < "$OUT/serve-smoke-metrics.json" \
  || fail "metrics reply missing nonzero store counters"

# --- phase 2: SIGKILL mid-workload, restart, recover --------------------
"$CLIENT" "$SOCK" "$REQ_CENSUS" > /dev/null 2>&1 &
CENSUS_PID=$!
sleep 0.3
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
wait "$CENSUS_PID" 2>/dev/null || true
DAEMON_PID=
# SIGKILL leaves the socket file behind; remove it so wait_for_socket
# observes the restarted daemon's bind, not the stale inode.
rm -f "$SOCK"

"$RCN" serve --socket "$SOCK" --store "$STORE" --jobs 2 --stats json \
  > "$OUT/serve-smoke.out" 2>&1 &
DAEMON_PID=$!
wait_for_socket

"$CLIENT" "$SOCK" "$REQ_ANALYZE" > "$OUT/serve-smoke-recovered.json"
grep -q '"from_store":true' "$OUT/serve-smoke-recovered.json" \
  || fail "restarted daemon did not recover the store"
diff "$OUT/serve-smoke-recovered.json" <(head -n 1 "$OUT/serve-smoke-warm.json") >/dev/null \
  || fail "recovered store served different bytes than before the crash"

# --- phase 3: clean SIGTERM shutdown ------------------------------------
kill -TERM "$DAEMON_PID"
STATUS=0
wait "$DAEMON_PID" || STATUS=$?
DAEMON_PID=
[ "$STATUS" = 0 ] || fail "SIGTERM shutdown exited $STATUS"
[ ! -e "$SOCK" ] || fail "daemon left its socket behind"
"$CHECK" --require store.hits --require store.loaded < "$OUT/serve-smoke.out" \
  || fail "daemon stats block missing store counters"

echo "serve-smoke: OK"
