#!/usr/bin/env bash
# dist-smoke: the distributed census failure model end to end, through
# the shipped binary (built binaries invoked directly — see the Makefile
# stats-smoke note on the _build lock).
#
# A 3-worker census with deterministic fault injection: slot 1's first
# worker is SIGKILLed after 40 tables (the respawn path) and slot 0 is
# throttled into a straggler (the work-stealing path).  The run must
#
#   1. actually exercise the machinery — gated by nonzero
#      dist.leases_stolen and dist.workers_respawned in the stats block;
#   2. merge a histogram bit-identical to the single-process census,
#      crash schedule and steal order notwithstanding;
#   3. leave a replayable ledger: the final audit of every grant,
#      death, steal and result.
#
# Then the symmetry-reduced census, single-process and over 2 workers:
# both must be gated on a nonzero sym.classes counter (the canonizer
# actually ran) and both histograms bit-identical to the unreduced
# single-process run.
#
# Then the soak: `rcn soak --dist` runs the {3,2,2} cap-4 census with
# seeded worker SIGKILLs plus a coordinator kill(-9) and --resume from
# the ledger, asserting the recovered histogram byte-identical to an
# in-process reference.
#
# Artifacts land in a scratch directory ($SMOKE_DIR/dist, default
# _build/smoke/dist), removed on success and kept for CI to archive on
# failure — a green run leaves nothing behind.
set -eu

RCN=./_build/default/bin/rcn.exe
CHECK=./_build/default/tools/stats_check.exe

OUT="${SMOKE_DIR:-_build/smoke}/dist"
rm -rf "$OUT"
mkdir -p "$OUT"
cleanup() {
  code=$?
  if [ "$code" -eq 0 ]; then
    rm -rf "$OUT"
  else
    echo "dist-smoke: artifacts kept in $OUT" >&2
  fi
}
trap cleanup EXIT

SPACE="--values 2 --rws 2 --responses 2 --cap 3"

fail() { echo "dist-smoke: FAIL: $*" >&2; exit 1; }

# Reference histogram: one process, no workers.
"$RCN" census $SPACE --jobs 1 > "$OUT/dist-smoke-single.out"

# Distributed: 3 workers, one big lease per half so the idle third
# worker (and the respawned second) must steal the straggler's tail.
"$RCN" census $SPACE --jobs 1 \
  --workers 3 --ledger "$OUT/dist-smoke.ledger" --retries 6 \
  --dist-chunk 128 --dist-stride 16 \
  --dist-crash 1:40 --dist-throttle 0:20000 \
  --stats json > "$OUT/dist-smoke.out"

"$CHECK" --require-nonzero dist.leases_stolen \
  --require-nonzero dist.workers_respawned \
  --require-nonzero dist.workers_spawned \
  --require dist.ranges_quarantined \
  < "$OUT/dist-smoke.out" \
  || fail "stats block did not witness the steal + respawn machinery"

# Bit-identity: the distributed output is the single-process output
# plus the trailing stats line.
diff "$OUT/dist-smoke-single.out" <(grep -v '"rcn_stats"' "$OUT/dist-smoke.out") >/dev/null \
  || fail "distributed histogram diverged from the single-process census"

# Symmetry reduction: one representative per canonical class, verdicts
# weighted by orbit size — the histogram must not move a bit, and the
# sym.classes counter proves the canonizer (not the full sweep) ran.
"$RCN" census $SPACE --jobs 1 --sym on --stats json > "$OUT/dist-smoke-sym.out"
"$CHECK" --require-nonzero sym.classes --require-nonzero sym.orbit_max \
  < "$OUT/dist-smoke-sym.out" \
  || fail "sym census did not report canonical classes"
diff "$OUT/dist-smoke-single.out" <(grep -v '"rcn_stats"' "$OUT/dist-smoke-sym.out") >/dev/null \
  || fail "symmetry-reduced histogram diverged from the unreduced census"

# ... and the same reduction sharded over worker processes.
"$RCN" census $SPACE --jobs 1 --sym on --workers 2 --stats json \
  > "$OUT/dist-smoke-sym-dist.out"
"$CHECK" --require-nonzero sym.classes \
  < "$OUT/dist-smoke-sym-dist.out" \
  || fail "distributed sym census did not report canonical classes"
diff "$OUT/dist-smoke-single.out" <(grep -v '"rcn_stats"' "$OUT/dist-smoke-sym-dist.out") >/dev/null \
  || fail "distributed symmetry-reduced histogram diverged"

# Worker kill(-9) storm + coordinator kill(-9) + resume, vs an
# in-process reference (the acceptance soak: {3,2,2} at cap 4, one
# seeded kill per worker slot per incarnation plus a coordinator kill).
"$RCN" soak --dist --values 3 --rws 2 --responses 2 --cap 4 --jobs 1 \
  --workers 3 --kills 3 --coordinator-kills 1 --seed 1 \
  || fail "dist soak did not recover bit-identically"

echo "dist-smoke: OK"
