#!/usr/bin/env bash
# dist-smoke: the distributed census failure model end to end, through
# the shipped binary (built binaries invoked directly — see the Makefile
# stats-smoke note on the _build lock).
#
# A 3-worker census with deterministic fault injection: slot 1's first
# worker is SIGKILLed after 40 tables (the respawn path) and slot 0 is
# throttled into a straggler (the work-stealing path).  The run must
#
#   1. actually exercise the machinery — gated by nonzero
#      dist.leases_stolen and dist.workers_respawned in the stats block;
#   2. merge a histogram bit-identical to the single-process census,
#      crash schedule and steal order notwithstanding;
#   3. leave a replayable ledger: the final audit of every grant,
#      death, steal and result (archived by CI).
#
# Then the soak: `rcn soak --dist` runs the {3,2,2} cap-4 census with
# seeded worker SIGKILLs plus a coordinator kill(-9) and --resume from
# the ledger, asserting the recovered histogram byte-identical to an
# in-process reference.
#
# Artifacts: dist-smoke.out, dist-smoke-single.out, dist-smoke.ledger.
set -eu

RCN=./_build/default/bin/rcn.exe
CHECK=./_build/default/tools/stats_check.exe

SPACE="--values 2 --rws 2 --responses 2 --cap 3"

fail() { echo "dist-smoke: FAIL: $*" >&2; exit 1; }

rm -f dist-smoke.out dist-smoke-single.out dist-smoke.ledger

# Reference histogram: one process, no workers.
"$RCN" census $SPACE --jobs 1 > dist-smoke-single.out

# Distributed: 3 workers, one big lease per half so the idle third
# worker (and the respawned second) must steal the straggler's tail.
"$RCN" census $SPACE --jobs 1 \
  --workers 3 --ledger dist-smoke.ledger --retries 6 \
  --dist-chunk 128 --dist-stride 16 \
  --dist-crash 1:40 --dist-throttle 0:20000 \
  --stats json > dist-smoke.out

"$CHECK" --require-nonzero dist.leases_stolen \
  --require-nonzero dist.workers_respawned \
  --require-nonzero dist.workers_spawned \
  --require dist.ranges_quarantined \
  < dist-smoke.out \
  || fail "stats block did not witness the steal + respawn machinery"

# Bit-identity: the distributed output is the single-process output
# plus the trailing stats line.
diff dist-smoke-single.out <(grep -v '"rcn_stats"' dist-smoke.out) >/dev/null \
  || fail "distributed histogram diverged from the single-process census"

# Worker kill(-9) storm + coordinator kill(-9) + resume, vs an
# in-process reference (the acceptance soak: {3,2,2} at cap 4, one
# seeded kill per worker slot per incarnation plus a coordinator kill).
"$RCN" soak --dist --values 3 --rws 2 --responses 2 --cap 4 --jobs 1 \
  --workers 3 --kills 3 --coordinator-kills 1 --seed 1 \
  || fail "dist soak did not recover bit-identically"

echo "dist-smoke: OK"
