(* serve_client — dependency-free client for the rcn serve protocol.

   Speaks the daemon's framing (ASCII decimal payload length, a newline,
   then the payload) with nothing but the stdlib and Unix, so the smoke
   harness exercises the wire format itself rather than the in-tree
   [Client] module: if these ~80 lines can talk to the daemon, anything
   can.

     serve_client SOCKET [--repeat N] [REQUEST_JSON]

   The request is the single-line JSON produced by `rcn request …` (read
   from stdin when not given as an argument).  Each repeat opens a fresh
   connection, sends the request, and prints the raw response line to
   stdout.  Exit 0 when every round-trip completed, 1 on any transport
   failure. *)

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("serve_client: " ^ m); exit 1) fmt

let write_all fd s =
  let n = String.length s in
  let b = Bytes.of_string s in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | 0 -> fail "socket write returned 0"
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let read_byte fd =
  let b = Bytes.create 1 in
  let rec go () =
    match Unix.read fd b 0 1 with
    | 0 -> None
    | _ -> Some (Bytes.get b 0)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let read_frame fd =
  let rec header acc n =
    if n > 20 then fail "frame header too long"
    else
      match read_byte fd with
      | None -> fail "connection closed before the response"
      | Some '\n' -> acc
      | Some c -> header (acc ^ String.make 1 c) (n + 1)
  in
  let len =
    match int_of_string_opt (header "" 0) with
    | Some l when l >= 0 -> l
    | _ -> fail "malformed frame header"
  in
  let buf = Bytes.create len in
  let rec body off =
    if off < len then
      match Unix.read fd buf off (len - off) with
      | 0 -> fail "connection closed mid-frame"
      | r -> body (off + r)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> body off
  in
  body 0;
  Bytes.to_string buf

let round_trip socket request =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      (try Unix.connect fd (Unix.ADDR_UNIX socket)
       with Unix.Unix_error (e, _, _) ->
         fail "cannot connect to %s: %s" socket (Unix.error_message e));
      write_all fd (Printf.sprintf "%d\n%s" (String.length request) request);
      print_endline (read_frame fd))

let () =
  let socket = ref None and repeat = ref 1 and request = ref None in
  let rec parse = function
    | "--repeat" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n >= 1 -> repeat := n
        | _ -> fail "--repeat needs a positive integer");
        parse rest
    | [ "--repeat" ] -> fail "--repeat needs a positive integer"
    | arg :: rest ->
        (if !socket = None then socket := Some arg
         else if !request = None then request := Some arg
         else fail "unexpected argument %s" arg);
        parse rest
    | [] -> ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let socket = match !socket with Some s -> s | None -> fail "usage: serve_client SOCKET [--repeat N] [REQUEST_JSON]" in
  let request =
    match !request with
    | Some r -> r
    | None -> (
        match In_channel.input_line In_channel.stdin with
        | Some l -> l
        | None -> fail "no request on stdin")
  in
  for _ = 1 to !repeat do
    round_trip socket request
  done
