(* stats_check — CI validator for the `rcn … --stats json` block.

   Reads mixed CLI output (stdin, or the files given as arguments), finds
   the single line tagged {"rcn_stats":1,...}, and checks its shape:

   - exactly one stats line, parseable by the extraction below;
   - "command", "counters" and "histograms" fields present;
   - the cache accounting invariant holds:
       engine.cache.hits + engine.cache.misses + engine.cache.expired
         = engine.cache.probes
   - every counter named on the command line as `--require NAME` exists;
   - every counter named as `--require-nonzero NAME` exists and is > 0
     (the form the kernel counters are validated with: a smoke run that
     never compiled a trie or evaluated a candidate is not a smoke run);
   - every counter named as `--require-zero NAME` exists and is exactly 0
     (the form invariant-violation counters are validated with: the
     crashtest smoke must have run its plans and found nothing).

   Dependency-free on purpose (the repo vendors no JSON library): the
   stats line is machine-written with a fixed key order and no whitespace,
   so integer fields can be extracted by scanning for `"key":`. *)

let substring_index hay needle =
  let n = String.length needle and h = String.length hay in
  let rec at i = if i + n > h then None else if String.sub hay i n = needle then Some i else at (i + 1) in
  at 0

let has hay needle = substring_index hay needle <> None

(* The integer immediately following `"key":`, if any. *)
let int_field line key =
  match substring_index line (Printf.sprintf "%S:" key) with
  | None -> None
  | Some i ->
      let start = i + String.length key + 3 in
      let stop = ref start in
      while
        !stop < String.length line
        && (match line.[!stop] with '0' .. '9' | '-' -> true | _ -> false)
      do
        incr stop
      done;
      if !stop = start then None else int_of_string_opt (String.sub line start (!stop - start))

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("stats_check: " ^ m); exit 1) fmt

let () =
  let required = ref []
  and required_nonzero = ref []
  and required_zero = ref []
  and inputs = ref [] in
  let rec parse = function
    | "--require" :: name :: rest ->
        required := name :: !required;
        parse rest
    | "--require-nonzero" :: name :: rest ->
        required_nonzero := name :: !required_nonzero;
        parse rest
    | "--require-zero" :: name :: rest ->
        required_zero := name :: !required_zero;
        parse rest
    | ("--require" | "--require-nonzero" | "--require-zero") :: [] ->
        fail "--require needs a counter name"
    | path :: rest ->
        inputs := path :: !inputs;
        parse rest
    | [] -> ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let lines =
    match List.rev !inputs with
    | [] -> In_channel.input_lines In_channel.stdin
    | paths -> List.concat_map (fun p -> In_channel.with_open_text p In_channel.input_lines) paths
  in
  (* Substring, not prefix: the daemon's metrics *response* embeds the
     rcn_stats object inside its envelope, and that line must validate
     the same way a bare `--stats json` line does. *)
  let stats_lines = List.filter (fun l -> has l {|{"rcn_stats":1|}) lines in
  let line =
    match stats_lines with
    | [ l ] -> l
    | [] -> fail "no rcn_stats line found"
    | ls -> fail "expected exactly one rcn_stats line, found %d" (List.length ls)
  in
  if line.[String.length line - 1] <> '}' then fail "stats line is not a closed object";
  List.iter
    (fun field -> if not (has line (Printf.sprintf "%S:" field)) then fail "missing %S field" field)
    [ "command"; "counters"; "histograms" ];
  (* The cache accounting invariant is checked whenever the process ran
     the engine cache at all; a process that never touched it (e.g. the
     distributed-census coordinator, which only brokers leases) exports
     no engine.cache.* counters and the invariant is vacuous. *)
  let cache_field name =
    match int_field line ("engine.cache." ^ name) with
    | Some v when v >= 0 -> Some v
    | Some v -> fail "engine.cache.%s is negative (%d)" name v
    | None -> None
  in
  let cache_report =
    match
      (cache_field "probes", cache_field "hits", cache_field "misses",
       cache_field "expired")
    with
    | Some probes, Some hits, Some misses, Some expired ->
        if hits + misses + expired <> probes then
          fail "cache invariant violated: hits %d + misses %d + expired %d <> probes %d"
            hits misses expired probes;
        Printf.sprintf "probes %d = hits %d + misses %d + expired %d" probes hits
          misses expired
    | None, None, None, None -> "no engine cache in this process"
    | _ -> fail "partial engine.cache.* counter set: cache accounting is torn"
  in
  List.iter
    (fun name -> if int_field line name = None then fail "missing required counter %s" name)
    !required;
  List.iter
    (fun name ->
      match int_field line name with
      | None -> fail "missing required counter %s" name
      | Some 0 -> fail "required counter %s is zero" name
      | Some v when v < 0 -> fail "required counter %s is negative (%d)" name v
      | Some _ -> ())
    !required_nonzero;
  List.iter
    (fun name ->
      match int_field line name with
      | None -> fail "missing required counter %s" name
      | Some 0 -> ()
      | Some v -> fail "required-zero counter %s is %d" name v)
    !required_zero;
  let all_required =
    List.rev_append !required_zero
      (List.rev_append !required_nonzero (List.rev !required))
  in
  Printf.printf "stats_check: ok (%s%s)\n" cache_report
    (match all_required with
    | [] -> ""
    | rs -> Printf.sprintf "; required counters present: %s" (String.concat ", " rs))
