(* gen_golden — (re)generate the pinned wire fixtures in test/golden/.

   The golden files pin the canonical serve-protocol encodings: if a
   code change alters any byte of them, `dune runtest` fails and the
   change is either a deliberate protocol bump (rerun this tool, commit
   the diff, and migrate the store) or a canonicality bug.  Every
   fixture is deterministic — the one wall-clock field (the analysis
   [elapsed]) is zeroed before encoding. *)

let fixtures () =
  let space = { Synth.num_values = 2; num_rws = 2; num_responses = 2 } in
  let analyze_req =
    Api.Request.Analyze
      {
        spec = Objtype.to_spec_string Gallery.test_and_set;
        config = Api.Config.default;
      }
  in
  let census_req =
    Api.Request.Census
      {
        space;
        sample = Some 10;
        seed = 7;
        checkpoint = None;
        resume = false;
        durable = false;
        config = Api.Config.v ~jobs:2 ~cap:3 ();
      }
  in
  let synth_req =
    Api.Request.Synth
      {
        space = { Synth.num_values = 5; num_rws = 4; num_responses = 5 };
        target = 4;
        seed = 1;
        iterations = 2000;
        restart_every = None;
        portfolio = 3;
        config = Api.Config.v ~deadline:2.5 ~retries:3 ~heartbeat:0.25 ();
      }
  in
  let analysis =
    { (Numbers.analyze ~cap:3 Gallery.test_and_set) with Analysis.elapsed = 0.0 }
  in
  [
    ("request_ping.json", Api.Request.to_string Api.Request.Ping);
    ("request_metrics.json", Api.Request.to_string Api.Request.Metrics);
    ("request_analyze.json", Api.Request.to_string analyze_req);
    ("request_census.json", Api.Request.to_string census_req);
    ("request_synth.json", Api.Request.to_string synth_req);
    ( "response_pong.json",
      Api.Response.to_string (Api.Response.make Api.Response.Pong) );
    ( "response_busy.json",
      Api.Response.to_string
        (Api.Response.error ~code:Api.Response.err_busy
           "admission queue full (64 waiting)") );
    ( "response_analysis.json",
      Api.Response.to_string
        (Api.Response.make (Api.Response.Analysis { analysis; from_store = true })) );
    ( "analysis_tas_cap3.json",
      Wire.to_string (Api.analysis_to_json analysis) );
    ("digest_tas_cap5.txt", Api.query_digest Gallery.test_and_set ~cap:5);
  ]

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "test/golden" in
  List.iter
    (fun (name, contents) ->
      let path = Filename.concat dir name in
      Out_channel.with_open_bin path (fun oc ->
          output_string oc contents;
          output_char oc '\n');
      Printf.printf "wrote %s (%d bytes)\n" path (String.length contents + 1))
    (fixtures ())
